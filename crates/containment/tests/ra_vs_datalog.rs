//! Differential test: conjunctive-query evaluation on the planned RA
//! engine agrees with the datalog route (and with the RA reference
//! interpreter) — annotation-exactly, on every supported semiring.
//!
//! Random safe non-recursive rules over binary edb predicates `R`, `S`
//! (with occasional constants and repeated variables, to exercise the
//! selection-generating parts of the translation) are evaluated as UCQs of
//! 1–3 disjuncts through all three routes.

use proptest::prelude::*;
use provsem_containment::{ConjunctiveQuery, UnionOfConjunctiveQueries};
use provsem_datalog::prelude::*;
use provsem_semiring::{Bool, Natural, PosBool, Semiring, Tropical, WhySet};

const CASES: u32 = 100;

const EDB: [&str; 2] = ["R", "S"];
const NODES: [&str; 4] = ["n0", "n1", "n2", "n3"];

/// Raw draw for one body atom: `(predicate, term1, term2)`. A term value
/// `< 4` is a variable `v{t}`; `4..6` is the constant node `n{t-4}`.
type RawAtom = (u8, u8, u8);

/// Raw draw for one rule: body atoms plus two head-variable selectors.
type RawRule = (Vec<RawAtom>, u8, u8);

/// Raw draw for one edb fact: `(predicate, src, dst, weight)`.
type RawFact = (u8, u8, u8, u64);

fn term(raw: u8) -> Term {
    let raw = raw % 6;
    if raw < 4 {
        Term::var(format!("v{raw}"))
    } else {
        Term::constant(NODES[(raw - 4) as usize])
    }
}

/// Builds a safe rule: if the body binds no variable, a variable atom is
/// appended; the head picks its variables from the body's.
fn build_rule(raw: &RawRule) -> ConjunctiveQuery {
    let (atoms, h1, h2) = raw;
    let mut body: Vec<Atom> = atoms
        .iter()
        .map(|(pred, t1, t2)| {
            Atom::new(EDB[*pred as usize % EDB.len()], vec![term(*t1), term(*t2)])
        })
        .collect();
    let mut vars: Vec<DlVar> = Vec::new();
    for atom in &body {
        for var in atom.variables() {
            if !vars.contains(&var) {
                vars.push(var);
            }
        }
    }
    if vars.is_empty() {
        body.push(Atom::new("R", vec![Term::var("v0"), Term::var("v1")]));
        vars = body.last().unwrap().variables().into_iter().collect();
    }
    let pick = |sel: u8| Term::Var(vars[sel as usize % vars.len()].clone());
    ConjunctiveQuery::new(Rule::new(Atom::new("Q", vec![pick(*h1), pick(*h2)]), body))
}

fn build_ucq(raw: &[RawRule]) -> UnionOfConjunctiveQueries {
    UnionOfConjunctiveQueries::new(raw.iter().map(build_rule).collect())
}

fn build_edb<K: Semiring>(raw: &[RawFact], annotate: impl Fn(usize, u64) -> K) -> FactStore<K> {
    let mut store = FactStore::new();
    for (i, (pred, src, dst, weight)) in raw.iter().enumerate() {
        store.insert(
            Fact::new(
                EDB[*pred as usize % EDB.len()],
                [
                    NODES[*src as usize % NODES.len()],
                    NODES[*dst as usize % NODES.len()],
                ],
            ),
            annotate(i, *weight),
        );
    }
    store
}

/// All three routes agree, per disjunct and for the whole UCQ.
fn assert_routes_agree<K: Semiring>(ucq: &UnionOfConjunctiveQueries, edb: &FactStore<K>) {
    for cq in &ucq.disjuncts {
        let datalog = cq.evaluate_datalog(edb);
        assert_eq!(
            cq.evaluate(edb),
            datalog,
            "planned ≠ datalog: {:?}",
            cq.rule
        );
        assert_eq!(
            cq.evaluate_interpreted(edb),
            datalog,
            "interpreted ≠ datalog: {:?}",
            cq.rule
        );
    }
    let datalog = ucq.evaluate_datalog(edb);
    assert_eq!(ucq.evaluate(edb), datalog, "UCQ planned ≠ datalog");
    assert_eq!(
        ucq.evaluate_interpreted(edb),
        datalog,
        "UCQ interpreted ≠ datalog"
    );
}

fn arb_ucq() -> impl Strategy<Value = Vec<RawRule>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u8..2, 0u8..6, 0u8..6), 1..4),
            0u8..8,
            0u8..8,
        ),
        1..4,
    )
}

fn arb_edb() -> impl Strategy<Value = Vec<RawFact>> {
    prop::collection::vec((0u8..2, 0u8..4, 0u8..4, 1u64..4), 0..9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn boolean_routes_agree(raw_ucq in arb_ucq(), raw_edb in arb_edb()) {
        let ucq = build_ucq(&raw_ucq);
        assert_routes_agree(&ucq, &build_edb(&raw_edb, |_, _| Bool::from(true)));
    }

    #[test]
    fn natural_routes_agree(raw_ucq in arb_ucq(), raw_edb in arb_edb()) {
        let ucq = build_ucq(&raw_ucq);
        assert_routes_agree(&ucq, &build_edb(&raw_edb, |_, w| Natural::from(w)));
    }

    #[test]
    fn tropical_routes_agree(raw_ucq in arb_ucq(), raw_edb in arb_edb()) {
        let ucq = build_ucq(&raw_ucq);
        assert_routes_agree(&ucq, &build_edb(&raw_edb, |_, w| Tropical::cost(w)));
    }

    #[test]
    fn why_provenance_routes_agree(raw_ucq in arb_ucq(), raw_edb in arb_edb()) {
        let ucq = build_ucq(&raw_ucq);
        assert_routes_agree(&ucq, &build_edb(&raw_edb, |i, _| WhySet::var(format!("t{i}"))));
    }

    #[test]
    fn posbool_routes_agree(raw_ucq in arb_ucq(), raw_edb in arb_edb()) {
        let ucq = build_ucq(&raw_ucq);
        assert_routes_agree(&ucq, &build_edb(&raw_edb, |i, _| PosBool::var(format!("t{i}"))));
    }
}

/// Constants and repeated variables in bodies and heads, spelled out.
#[test]
fn constants_and_repeats_translate_correctly() {
    let edb = build_edb(&[(0, 0, 0, 2), (0, 0, 1, 3), (1, 1, 1, 5)], |_, w| {
        Natural::from(w)
    });
    // Repeated variable: self-loops only.
    let loops = ConjunctiveQuery::parse("Q(x, x) :- R(x, x).").unwrap();
    assert_eq!(loops.evaluate(&edb), loops.evaluate_datalog(&edb));
    assert_eq!(
        loops
            .evaluate(&edb)
            .annotation(&Fact::new("Q", ["n0", "n0"])),
        Natural::from(2u64)
    );
    // Constant in the body.
    let from_n0 = ConjunctiveQuery::parse("Q(y, y) :- R('n0', y).").unwrap();
    assert_eq!(from_n0.evaluate(&edb), from_n0.evaluate_datalog(&edb));
    // Join across predicates with a constant and a projection-sum.
    let two_hop = ConjunctiveQuery::parse("Q(x, z) :- R(x, y), S(y, z).").unwrap();
    assert_eq!(two_hop.evaluate(&edb), two_hop.evaluate_datalog(&edb));
    assert_eq!(
        two_hop
            .evaluate(&edb)
            .annotation(&Fact::new("Q", ["n0", "n1"])),
        Natural::from(15u64)
    );
}

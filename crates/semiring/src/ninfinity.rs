//! The ω-continuous completion of ℕ: `(ℕ∞, +, ·, 0, 1)` with
//! `∞ + n = ∞`, `∞ · n = ∞` for `n ≠ 0`, and `∞ · 0 = 0` (Section 5).
//!
//! ℕ∞ is the annotation domain for datalog with bag semantics: a tuple with
//! infinitely many derivation trees gets multiplicity ∞ (Figure 7 of the
//! paper computes transitive closure annotations `8, 3, 2, ∞, ∞, ∞`).

use crate::natural::Natural;
use crate::traits::{CommutativeSemiring, NaturallyOrdered, OmegaContinuous, Semiring};
use std::cmp::Ordering;
use std::fmt;

/// An element of ℕ∞ = ℕ ∪ {∞}.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum NatInf {
    /// A finite multiplicity.
    Fin(u64),
    /// The infinite multiplicity, the least upper bound of every unbounded
    /// ω-chain in ℕ.
    Inf,
}

impl NatInf {
    /// The finite element `n`.
    pub const fn fin(n: u64) -> Self {
        NatInf::Fin(n)
    }

    /// The infinite element ∞.
    pub const fn inf() -> Self {
        NatInf::Inf
    }

    /// Returns `true` iff this is ∞.
    pub const fn is_infinite(&self) -> bool {
        matches!(self, NatInf::Inf)
    }

    /// Returns the finite value, or `None` for ∞.
    pub const fn finite_value(&self) -> Option<u64> {
        match self {
            NatInf::Fin(n) => Some(*n),
            NatInf::Inf => None,
        }
    }

    /// Saturating conversion: values too large for `u64` are mapped to ∞ by
    /// the arithmetic below, so `checked` variants are not needed.
    pub fn from_usize(n: usize) -> Self {
        NatInf::Fin(n as u64)
    }
}

impl From<u64> for NatInf {
    fn from(n: u64) -> Self {
        NatInf::Fin(n)
    }
}

impl From<Natural> for NatInf {
    fn from(n: Natural) -> Self {
        NatInf::Fin(n.value())
    }
}

impl fmt::Debug for NatInf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NatInf::Fin(n) => write!(f, "{n}"),
            NatInf::Inf => write!(f, "∞"),
        }
    }
}

impl fmt::Display for NatInf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl PartialOrd for NatInf {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NatInf {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (NatInf::Fin(a), NatInf::Fin(b)) => a.cmp(b),
            (NatInf::Fin(_), NatInf::Inf) => Ordering::Less,
            (NatInf::Inf, NatInf::Fin(_)) => Ordering::Greater,
            (NatInf::Inf, NatInf::Inf) => Ordering::Equal,
        }
    }
}

impl Semiring for NatInf {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        NatInf::Fin(0)
    }

    fn one() -> Self {
        NatInf::Fin(1)
    }

    fn plus(&self, other: &Self) -> Self {
        match (self, other) {
            (NatInf::Fin(a), NatInf::Fin(b)) => match a.checked_add(*b) {
                Some(s) => NatInf::Fin(s),
                // Saturate to ∞; this is sound because ∞ is an upper bound
                // and the only information callers rely on above u64::MAX is
                // "unboundedly large".
                None => NatInf::Inf,
            },
            _ => NatInf::Inf,
        }
    }

    fn times(&self, other: &Self) -> Self {
        match (self, other) {
            (NatInf::Fin(0), _) | (_, NatInf::Fin(0)) => NatInf::Fin(0),
            (NatInf::Fin(a), NatInf::Fin(b)) => match a.checked_mul(*b) {
                Some(p) => NatInf::Fin(p),
                None => NatInf::Inf,
            },
            _ => NatInf::Inf,
        }
    }

    fn is_zero(&self) -> bool {
        matches!(self, NatInf::Fin(0))
    }

    fn is_one(&self) -> bool {
        matches!(self, NatInf::Fin(1))
    }
}

impl CommutativeSemiring for NatInf {}

impl NaturallyOrdered for NatInf {
    fn natural_leq(&self, other: &Self) -> bool {
        self <= other
    }
}

impl OmegaContinuous for NatInf {
    fn star(&self) -> Self {
        // a* = 1 + a + a² + ⋯: equals 1 when a = 0 and ∞ otherwise
        // (the paper: "in ℕ∞ we have 1* = ∞").
        if self.is_zero() {
            NatInf::Fin(1)
        } else {
            NatInf::Inf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_omega_axioms, check_semiring_laws};
    use proptest::prelude::*;

    fn samples() -> Vec<NatInf> {
        vec![
            NatInf::Fin(0),
            NatInf::Fin(1),
            NatInf::Fin(2),
            NatInf::Fin(3),
            NatInf::Fin(55),
            NatInf::Inf,
        ]
    }

    #[test]
    fn ninfinity_semiring_laws() {
        check_semiring_laws(&samples()).expect("ℕ∞ must satisfy the semiring laws");
    }

    #[test]
    fn ninfinity_omega_axioms() {
        check_omega_axioms(&samples()).expect("ℕ∞ must satisfy the ω-continuity sanity axioms");
    }

    #[test]
    fn infinity_absorbs_addition_and_nonzero_multiplication() {
        assert_eq!(NatInf::Inf.plus(&NatInf::Fin(3)), NatInf::Inf);
        assert_eq!(NatInf::Fin(3).plus(&NatInf::Inf), NatInf::Inf);
        assert_eq!(NatInf::Inf.times(&NatInf::Fin(3)), NatInf::Inf);
        // The single exception required by the paper: ∞ · 0 = 0 · ∞ = 0.
        assert_eq!(NatInf::Inf.times(&NatInf::Fin(0)), NatInf::Fin(0));
        assert_eq!(NatInf::Fin(0).times(&NatInf::Inf), NatInf::Fin(0));
    }

    #[test]
    fn star_of_positive_elements_is_infinite() {
        assert_eq!(NatInf::Fin(0).star(), NatInf::Fin(1));
        assert_eq!(NatInf::Fin(1).star(), NatInf::Inf);
        assert_eq!(NatInf::Fin(7).star(), NatInf::Inf);
        assert_eq!(NatInf::Inf.star(), NatInf::Inf);
    }

    #[test]
    fn order_places_infinity_on_top() {
        assert!(NatInf::Fin(1_000_000).natural_leq(&NatInf::Inf));
        assert!(!NatInf::Inf.natural_leq(&NatInf::Fin(1_000_000)));
        assert!(NatInf::Inf.natural_leq(&NatInf::Inf));
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let big = NatInf::Fin(u64::MAX);
        assert_eq!(big.plus(&NatInf::Fin(1)), NatInf::Inf);
        assert_eq!(big.times(&NatInf::Fin(2)), NatInf::Inf);
    }

    proptest! {
        #[test]
        fn prop_agrees_with_natural_on_finite_values(a in 0u64..1000, b in 0u64..1000) {
            let (na, nb) = (NatInf::Fin(a), NatInf::Fin(b));
            prop_assert_eq!(na.plus(&nb), NatInf::Fin(a + b));
            prop_assert_eq!(na.times(&nb), NatInf::Fin(a * b));
        }

        #[test]
        fn prop_monotone_in_each_argument(a in 0u64..1000, b in 0u64..1000, c in 0u64..1000) {
            // + and · are ω-continuous hence monotone.
            let (na, nb, nc) = (NatInf::Fin(a), NatInf::Fin(b), NatInf::Fin(c));
            if na.natural_leq(&nb) {
                prop_assert!(na.plus(&nc).natural_leq(&nb.plus(&nc)));
                prop_assert!(na.times(&nc).natural_leq(&nb.times(&nc)));
            }
        }
    }
}

//! Polynomial semirings `K[X]`, in particular the **provenance polynomials**
//! `ℕ\[X\]` of Section 4 of the paper.
//!
//! `ℕ\[X\]` is the free commutative semiring on the variable set X: by
//! Proposition 4.2, every valuation `v : X → K` into a commutative semiring
//! extends to a unique homomorphism `Eval_v : ℕ\[X\] → K`. Theorem 4.3 (the
//! factorization theorem) then says that RA⁺ evaluation over any K factors
//! through evaluation over ℕ\[X\] — computing with provenance polynomials is
//! computing "in the most general way possible".

use crate::monomial::Monomial;
use crate::natural::Natural;
use crate::ninfinity::NatInf;
use crate::traits::{CommutativeSemiring, NaturallyOrdered, Semiring, SemiringHomomorphism};
use crate::variable::{Valuation, Variable};
use std::collections::BTreeMap;
use std::fmt;

/// A multivariate polynomial with coefficients in `K`, stored sparsely as a
/// map from monomials to non-zero coefficients.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Polynomial<K> {
    terms: BTreeMap<Monomial, K>,
}

/// The provenance polynomial semiring ℕ\[X\] (Definition 4.1).
pub type ProvenancePolynomial = Polynomial<Natural>;

/// Polynomials with ℕ∞ coefficients, the finite-support fragment of the
/// datalog provenance semiring ℕ∞\[\[X\]\] (Section 6).
pub type NatInfPolynomial = Polynomial<NatInf>;

/// The boolean provenance polynomials 𝔹\[X\]: polynomials with boolean
/// coefficients, i.e. finite sets of monomials. An intermediate point of the
/// provenance-semiring hierarchy (drops multiplicities of derivations but
/// keeps exponents).
pub type BoolPolynomial = Polynomial<crate::boolean::Bool>;

/// The ring ℤ\[X\] of provenance polynomials with signed integer
/// coefficients — the free commutative ring on the tuple variables, and the
/// most general annotation structure for incremental view maintenance of
/// provenance (a deletion subtracts the deleted tuple's monomials).
pub type ZPolynomial = Polynomial<crate::ring::Integers>;

impl<K: Semiring> Polynomial<K> {
    /// The zero polynomial.
    pub fn new() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    /// The polynomial consisting of a single variable with coefficient 1.
    pub fn var(v: impl Into<Variable>) -> Self {
        Polynomial::from_term(Monomial::var(v), K::one())
    }

    /// A constant polynomial.
    pub fn constant(value: K) -> Self {
        Polynomial::from_term(Monomial::unit(), value)
    }

    /// A single term `coefficient · monomial`.
    pub fn from_term(monomial: Monomial, coefficient: K) -> Self {
        let mut p = Polynomial::new();
        p.add_term(monomial, coefficient);
        p
    }

    /// Builds a polynomial from `(monomial, coefficient)` pairs, summing
    /// duplicate monomials and dropping zero coefficients.
    pub fn from_terms<I>(terms: I) -> Self
    where
        I: IntoIterator<Item = (Monomial, K)>,
    {
        let mut p = Polynomial::new();
        for (m, c) in terms {
            p.add_term(m, c);
        }
        p
    }

    /// Adds `coefficient · monomial` to this polynomial in place.
    pub fn add_term(&mut self, monomial: Monomial, coefficient: K) {
        if coefficient.is_zero() {
            return;
        }
        match self.terms.get_mut(&monomial) {
            Some(existing) => {
                existing.plus_assign(&coefficient);
                if existing.is_zero() {
                    self.terms.remove(&monomial);
                }
            }
            None => {
                self.terms.insert(monomial, coefficient);
            }
        }
    }

    /// The coefficient of `monomial` (zero if absent).
    pub fn coefficient(&self, monomial: &Monomial) -> K {
        self.terms.get(monomial).cloned().unwrap_or_else(K::zero)
    }

    /// Iterates over `(monomial, coefficient)` pairs with non-zero
    /// coefficients, in monomial order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &K)> {
        self.terms.iter()
    }

    /// Number of (non-zero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// All variables occurring in the polynomial.
    pub fn variables(&self) -> std::collections::BTreeSet<Variable> {
        self.terms
            .keys()
            .flat_map(|m| m.variables().cloned())
            .collect()
    }

    /// Evaluates the polynomial under a valuation `v : X → K'` into any
    /// commutative semiring `K'` — the unique homomorphism `Eval_v` of
    /// Proposition 4.2 when `K = ℕ`.
    ///
    /// Coefficients are transported along `coeff_embed`, which must be a
    /// semiring homomorphism `K → K'` (for ℕ coefficients this is the
    /// canonical embedding `n ↦ 1 + ⋯ + 1`). Unassigned variables evaluate
    /// to `K'::zero()`.
    ///
    /// Each `v^e` a monomial needs is computed once per evaluation (by
    /// square-and-multiply, [`Semiring::pow`]) and cached for the monomials
    /// that reuse it, rather than being recomputed per occurrence.
    pub fn evaluate_with<K2, F>(&self, valuation: &Valuation<K2>, coeff_embed: F) -> K2
    where
        K2: CommutativeSemiring,
        F: Fn(&K) -> K2,
    {
        // Keyed by borrowed variables: cache hits cost no clone at all.
        let mut powers: std::collections::HashMap<(&Variable, u32), K2> =
            std::collections::HashMap::new();
        let mut acc = K2::zero();
        for (monomial, coeff) in &self.terms {
            let mut term = coeff_embed(coeff);
            if term.is_zero() {
                continue;
            }
            for (var, exp) in monomial.powers() {
                let power = powers.entry((var, exp)).or_insert_with(|| {
                    valuation
                        .get(var)
                        .map(|value| value.pow(exp))
                        .unwrap_or_else(K2::zero)
                });
                term.times_assign(power);
            }
            acc.plus_assign(&term);
        }
        acc
    }

    /// Maps the coefficients through a function (which should be a semiring
    /// homomorphism for the result to be meaningful), keeping monomials.
    pub fn map_coefficients<K2: Semiring, F: Fn(&K) -> K2>(&self, f: F) -> Polynomial<K2> {
        let mut p = Polynomial::new();
        for (m, c) in &self.terms {
            p.add_term(m.clone(), f(c));
        }
        p
    }

    /// Substitutes polynomials for variables: every variable `x` is replaced
    /// by `valuation(x)` (variables without an assignment stay themselves).
    /// This is polynomial composition, used when solving algebraic systems
    /// symbolically.
    ///
    /// Like [`Polynomial::evaluate_with`], each replacement power
    /// `p(x)^e` is computed once per substitution (square-and-multiply) and
    /// cached across the monomials that share it — raising a replacement
    /// polynomial to a power is by far the dominant cost here.
    pub fn substitute(&self, valuation: &Valuation<Polynomial<K>>) -> Polynomial<K>
    where
        K: CommutativeSemiring,
    {
        let mut powers: std::collections::HashMap<(&Variable, u32), Polynomial<K>> =
            std::collections::HashMap::new();
        let mut acc = Polynomial::new();
        for (monomial, coeff) in &self.terms {
            let mut term = Polynomial::constant(coeff.clone());
            for (var, exp) in monomial.powers() {
                let power = powers.entry((var, exp)).or_insert_with(|| {
                    valuation
                        .get(var)
                        .map(|replacement| replacement.pow(exp))
                        .unwrap_or_else(|| Polynomial::var(var.clone()).pow(exp))
                });
                term = term.times(power);
            }
            acc.plus_assign(&term);
        }
        acc
    }

    /// Truncates the polynomial to terms of total degree at most `max_degree`.
    pub fn truncate(&self, max_degree: u32) -> Polynomial<K> {
        Polynomial {
            terms: self
                .terms
                .iter()
                .filter(|(m, _)| m.degree() <= max_degree)
                .map(|(m, c)| (m.clone(), c.clone()))
                .collect(),
        }
    }
}

impl ProvenancePolynomial {
    /// Evaluates a provenance polynomial in an arbitrary commutative semiring
    /// via a valuation — `Eval_v : ℕ\[X\] → K` (Proposition 4.2). Integer
    /// coefficients are interpreted as repeated addition in K.
    pub fn eval<K: CommutativeSemiring>(&self, valuation: &Valuation<K>) -> K {
        self.evaluate_with(valuation, |n| K::one().repeat(n.value()))
    }

    /// The why-provenance of this polynomial: the union of the supports of
    /// its monomials — the canonical surjection ℕ\[X\] → (P(X), ∪, ∪) that
    /// recovers Figure 5(b) from Figure 5(c) in the paper.
    pub fn why_provenance(&self) -> crate::why::WhySet {
        crate::why::WhySet::from_vars(
            self.terms
                .keys()
                .flat_map(|m| m.variables().cloned())
                .collect::<Vec<_>>(),
        )
    }

    /// The witness form (set of monomial supports) — the surjection onto
    /// `Why(X) = P(P(X))`.
    pub fn witnesses(&self) -> crate::why::Witness {
        crate::why::Witness::from_witnesses(
            self.terms
                .keys()
                .map(|m| m.support().into_iter().collect::<Vec<_>>()),
        )
    }

    /// The positive-boolean reading of the polynomial: coefficients are
    /// forgotten and exponents flattened, giving the canonical surjection
    /// ℕ\[X\] → PosBool(X).
    pub fn to_posbool(&self) -> crate::posbool::PosBool {
        crate::posbool::PosBool::from_dnf(
            self.terms
                .keys()
                .map(|m| m.support().into_iter().collect::<Vec<_>>()),
        )
    }
}

impl<K: Semiring> fmt::Debug for Polynomial<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if m.is_unit() {
                write!(f, "{c:?}")?;
            } else if c.is_one() {
                write!(f, "{m:?}")?;
            } else {
                write!(f, "{c:?}{m:?}")?;
            }
        }
        Ok(())
    }
}

impl<K: Semiring> fmt::Display for Polynomial<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<K: Semiring> Semiring for Polynomial<K> {
    fn zero() -> Self {
        Polynomial::new()
    }

    fn one() -> Self {
        Polynomial::constant(K::one())
    }

    fn plus(&self, other: &Self) -> Self {
        let mut result = self.clone();
        for (m, c) in &other.terms {
            result.add_term(m.clone(), c.clone());
        }
        result
    }

    fn times(&self, other: &Self) -> Self {
        let mut result = Polynomial::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                result.add_term(m1.multiply(m2), c1.times(c2));
            }
        }
        result
    }

    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    fn is_one(&self) -> bool {
        self.terms.len() == 1
            && self
                .terms
                .get(&Monomial::unit())
                .map(Semiring::is_one)
                .unwrap_or(false)
    }

    /// Polynomials cross threads whenever their coefficients do: the batch
    /// is decomposed into monomial shapes (plain `Send` data) plus one flat
    /// coefficient batch transported through `K`'s own encoding — so
    /// ℕ\[X\] travels as-is while a hypothetical `Polynomial<Circuit>` would
    /// inherit the circuit arena re-encoding.
    fn is_portable() -> bool {
        K::is_portable()
    }

    fn to_portable(batch: Vec<Self>) -> crate::traits::Portable {
        let mut shapes: Vec<Vec<Monomial>> = Vec::with_capacity(batch.len());
        let mut coeffs: Vec<K> = Vec::new();
        for p in batch {
            let mut shape = Vec::with_capacity(p.terms.len());
            for (m, c) in p.terms {
                shape.push(m);
                coeffs.push(c);
            }
            shapes.push(shape);
        }
        crate::traits::Portable::new((shapes, K::to_portable(coeffs)))
    }

    fn from_portable(token: crate::traits::Portable) -> Vec<Self> {
        let (shapes, inner): (Vec<Vec<Monomial>>, crate::traits::Portable) = token.unwrap();
        let mut coeffs = K::from_portable(inner).into_iter();
        shapes
            .into_iter()
            .map(|shape| Polynomial {
                terms: shape
                    .into_iter()
                    .map(|m| (m, coeffs.next().expect("coefficient batch too short")))
                    .collect(),
            })
            .collect()
    }
}

impl<K: CommutativeSemiring> CommutativeSemiring for Polynomial<K> {}

// Addition of polynomials is coefficient-wise, so it is cancellative
// exactly when coefficient addition is.
impl<K: Semiring + crate::ring::CancellativePlus> crate::ring::CancellativePlus for Polynomial<K> {}

impl<K: Semiring + crate::ring::Ring> crate::ring::Ring for Polynomial<K> {
    fn neg(&self) -> Self {
        // -(Σ cᵢ·mᵢ) = Σ (-cᵢ)·mᵢ.
        self.map_coefficients(|c| c.neg())
    }
}

impl<K> NaturallyOrdered for Polynomial<K>
where
    K: Semiring + NaturallyOrdered,
{
    fn natural_leq(&self, other: &Self) -> bool {
        // Coefficient-wise order; for ℕ coefficients this is exactly the
        // natural order of ℕ[X] (the witness is the coefficient-wise
        // difference).
        self.terms
            .iter()
            .all(|(m, c)| c.natural_leq(&other.coefficient(m)))
    }
}

/// The evaluation homomorphism `Eval_v : ℕ\[X\] → K` of Proposition 4.2,
/// packaged as a [`SemiringHomomorphism`] object.
pub struct EvalHom<K: CommutativeSemiring> {
    valuation: Valuation<K>,
}

impl<K: CommutativeSemiring> EvalHom<K> {
    /// Creates the evaluation homomorphism for the given valuation.
    pub fn new(valuation: Valuation<K>) -> Self {
        EvalHom { valuation }
    }

    /// The underlying valuation.
    pub fn valuation(&self) -> &Valuation<K> {
        &self.valuation
    }
}

impl<K: CommutativeSemiring> SemiringHomomorphism<ProvenancePolynomial, K> for EvalHom<K> {
    fn apply(&self, p: &ProvenancePolynomial) -> K {
        p.eval(&self.valuation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::posbool::PosBool;
    use crate::properties::{check_homomorphism, check_semiring_laws};
    use crate::why::WhySet;

    fn p(v: &str) -> ProvenancePolynomial {
        Polynomial::var(v)
    }

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    fn samples() -> Vec<ProvenancePolynomial> {
        vec![
            Polynomial::zero(),
            Polynomial::one(),
            p("p"),
            p("r"),
            p("p").plus(&p("r")),
            p("p").times(&p("r")),
            p("p").times(&p("p")).plus(&Polynomial::constant(nat(2))),
            p("r").pow(2).repeat(2).plus(&p("r").times(&p("s"))),
        ]
    }

    #[test]
    fn polynomial_semiring_laws() {
        check_semiring_laws(&samples()).expect("ℕ[X] semiring laws");
    }

    #[test]
    fn figure5c_polynomial_arithmetic() {
        // Figure 5(c): the provenance of (f,e) is 2s² + rs and of (d,e) is
        // 2r² + rs. Build them from the query structure:
        //   (d,e): r·r + r·r + r·s ; (f,e): s·s + s·s + r·s.
        let de = p("r")
            .times(&p("r"))
            .plus(&p("r").times(&p("r")))
            .plus(&p("r").times(&p("s")));
        let fe = p("s")
            .times(&p("s"))
            .plus(&p("s").times(&p("s")))
            .plus(&p("r").times(&p("s")));
        let expected_de = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        let expected_fe = Polynomial::from_terms([
            (Monomial::from_powers([("s", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        assert_eq!(de, expected_de);
        assert_eq!(fe, expected_fe);
        // Unlike why-provenance, the polynomials distinguish the two tuples.
        assert_ne!(de, fe);
    }

    #[test]
    fn eval_recovers_bag_multiplicities() {
        // Evaluating 2r² + rs at p=2, r=5, s=1 gives 55, the multiplicity of
        // (d,e) in Figure 3(b) — the instance of Theorem 4.3 the paper works
        // out explicitly.
        let de = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        let v = Valuation::from_pairs([("p", nat(2)), ("r", nat(5)), ("s", nat(1))]);
        assert_eq!(de.eval(&v), nat(55));
    }

    #[test]
    fn eval_into_posbool_recovers_ctable_annotations() {
        // Evaluating 2r² + rs in PosBool with r ↦ b2, s ↦ b3 gives b2 ∨ (b2∧b3) = b2,
        // matching Figure 2(b) for the tuple (d,e).
        let de = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        let v = Valuation::from_pairs([("r", PosBool::var("b2")), ("s", PosBool::var("b3"))]);
        assert_eq!(de.eval(&v), PosBool::var("b2"));
    }

    #[test]
    fn eval_is_a_homomorphism() {
        let v = Valuation::from_pairs([("p", nat(2)), ("r", nat(5)), ("s", nat(1))]);
        let hom = EvalHom::new(v);
        check_homomorphism(&hom, &samples()).expect("Eval_v is a semiring homomorphism");
    }

    #[test]
    fn eval_into_boolean_checks_derivability() {
        let poly = p("p").times(&p("r")).plus(&p("s"));
        let v = Valuation::from_pairs([
            ("p", Bool::from(true)),
            ("r", Bool::from(false)),
            ("s", Bool::from(false)),
        ]);
        assert_eq!(poly.eval(&v), Bool::from(false));
        let v2 = Valuation::from_pairs([
            ("p", Bool::from(true)),
            ("r", Bool::from(true)),
            ("s", Bool::from(false)),
        ]);
        assert_eq!(poly.eval(&v2), Bool::from(true));
    }

    #[test]
    fn why_provenance_projection() {
        let de = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        assert_eq!(de.why_provenance(), WhySet::from_vars(["r", "s"]));
    }

    #[test]
    fn posbool_projection_flattens_coefficients_and_exponents() {
        let de = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        assert_eq!(de.to_posbool(), PosBool::var("r"));
    }

    #[test]
    fn coefficients_and_terms_access() {
        let poly = p("x").repeat(3).plus(&Polynomial::constant(nat(7)));
        assert_eq!(poly.coefficient(&Monomial::var("x")), nat(3));
        assert_eq!(poly.coefficient(&Monomial::unit()), nat(7));
        assert_eq!(poly.coefficient(&Monomial::var("y")), nat(0));
        assert_eq!(poly.num_terms(), 2);
        assert_eq!(poly.degree(), 1);
    }

    #[test]
    fn substitution_composes_polynomials() {
        // Substituting x ↦ a + b into x² gives a² + 2ab + b².
        let square = p("x").times(&p("x"));
        let mut val: Valuation<ProvenancePolynomial> = Valuation::new();
        val.assign(Variable::new("x"), p("a").plus(&p("b")));
        let result = square.substitute(&val);
        let expected = Polynomial::from_terms([
            (Monomial::from_powers([("a", 2u32)]), nat(1)),
            (Monomial::from_bag(["a", "b"]), nat(2)),
            (Monomial::from_powers([("b", 2u32)]), nat(1)),
        ]);
        assert_eq!(result, expected);
    }

    #[test]
    fn truncation_keeps_low_degree_terms() {
        let poly = p("x").pow(3).plus(&p("x")).plus(&Polynomial::one());
        let t = poly.truncate(1);
        assert_eq!(t.num_terms(), 2);
        assert_eq!(t.coefficient(&Monomial::var("x")), nat(1));
        assert_eq!(t.coefficient(&Monomial::from_powers([("x", 3u32)])), nat(0));
    }

    #[test]
    fn zero_coefficients_never_stored() {
        let mut poly = ProvenancePolynomial::new();
        poly.add_term(Monomial::var("x"), nat(0));
        assert!(poly.is_zero());
        assert_eq!(poly.num_terms(), 0);
    }

    #[test]
    fn map_coefficients_to_bool_polynomial() {
        let poly = p("x").repeat(3).plus(&p("y"));
        let bp: BoolPolynomial = poly.map_coefficients(|c| Bool::from(!c.is_zero()));
        assert_eq!(bp.coefficient(&Monomial::var("x")), Bool::from(true));
        assert_eq!(bp.coefficient(&Monomial::var("y")), Bool::from(true));
        assert_eq!(bp.num_terms(), 2);
    }

    #[test]
    fn natural_order_is_coefficientwise() {
        let small = p("x").plus(&p("y"));
        let big = p("x").repeat(2).plus(&p("y")).plus(&p("z"));
        assert!(small.natural_leq(&big));
        assert!(!big.natural_leq(&small));
    }
}

//! The Boolean semiring `(𝔹, ∨, ∧, false, true)`.
//!
//! This is the annotation structure of ordinary set-semantics relations: a
//! tuple tagged `true` is in the relation, a tuple tagged `false` is not
//! (Section 3 of the paper).

use crate::traits::{
    CommutativeSemiring, DistributiveLattice, FiniteSemiring, NaturallyOrdered, OmegaContinuous,
    PlusIdempotent, Semiring,
};
use std::fmt;

/// An element of the Boolean semiring 𝔹.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bool(pub bool);

impl Bool {
    /// The element `true` (the multiplicative unit).
    pub const TRUE: Bool = Bool(true);
    /// The element `false` (the additive unit).
    pub const FALSE: Bool = Bool(false);

    /// Returns the wrapped `bool`.
    pub fn value(self) -> bool {
        self.0
    }
}

impl From<bool> for Bool {
    fn from(b: bool) -> Self {
        Bool(b)
    }
}

impl From<Bool> for bool {
    fn from(b: Bool) -> Self {
        b.0
    }
}

impl fmt::Debug for Bool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Bool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Semiring for Bool {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Bool(false)
    }

    fn one() -> Self {
        Bool(true)
    }

    fn plus(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }

    fn times(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }

    fn is_zero(&self) -> bool {
        !self.0
    }

    fn is_one(&self) -> bool {
        self.0
    }
}

impl CommutativeSemiring for Bool {}
impl PlusIdempotent for Bool {}

impl NaturallyOrdered for Bool {
    fn natural_leq(&self, other: &Self) -> bool {
        // false ≤ false, false ≤ true, true ≤ true.
        !self.0 || other.0
    }
}

impl OmegaContinuous for Bool {
    fn star(&self) -> Self {
        // 1 + a + a² + ⋯ = true in 𝔹 regardless of a.
        Bool(true)
    }

    fn convergence_bound(num_variables: usize) -> Option<usize> {
        // Each variable can only ever flip false → true once.
        Some(num_variables + 1)
    }
}

impl DistributiveLattice for Bool {}

impl FiniteSemiring for Bool {
    fn enumerate() -> Vec<Self> {
        vec![Bool(false), Bool(true)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_distributive_lattice, check_semiring_laws};

    #[test]
    fn boolean_semiring_laws() {
        check_semiring_laws(&Bool::enumerate()).expect("𝔹 must satisfy the semiring laws");
    }

    #[test]
    fn boolean_is_a_distributive_lattice() {
        check_distributive_lattice(&Bool::enumerate()).expect("𝔹 is a distributive lattice");
    }

    #[test]
    fn natural_order_is_false_below_true() {
        assert!(Bool::FALSE.natural_leq(&Bool::TRUE));
        assert!(!Bool::TRUE.natural_leq(&Bool::FALSE));
        assert!(Bool::TRUE.natural_leq(&Bool::TRUE));
        assert!(Bool::FALSE.natural_leq(&Bool::FALSE));
    }

    #[test]
    fn star_is_always_true() {
        assert_eq!(Bool::FALSE.star(), Bool::TRUE);
        assert_eq!(Bool::TRUE.star(), Bool::TRUE);
    }

    #[test]
    fn zero_one_identifications() {
        assert!(Bool::zero().is_zero());
        assert!(Bool::one().is_one());
        assert!(!Bool::one().is_zero());
        assert_ne!(Bool::zero(), Bool::one());
    }

    #[test]
    fn conversion_round_trip() {
        assert!(bool::from(Bool::from(true)));
        assert!(!bool::from(Bool::from(false)));
        assert!(Bool::from(true).value());
    }
}

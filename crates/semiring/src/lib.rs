//! # provsem-semiring
//!
//! The algebraic substrate of the *Provenance Semirings* reproduction
//! (Green, Karvounarakis, Tannen; PODS 2007): commutative semirings,
//! ω-continuous semirings, distributive lattices, semiring homomorphisms,
//! provenance polynomials ℕ\[X\] and formal power series ℕ∞\[\[X\]\].
//!
//! The sibling crates build on this one:
//!
//! * `provsem-core` — K-relations and the positive relational algebra
//!   (Definition 3.2), provenance-tracking evaluation (Theorem 4.3);
//! * `provsem-datalog` — datalog on K-relations, algebraic systems,
//!   All-Trees and Monomial-Coefficient (Sections 5–8);
//! * `provsem-incomplete`, `provsem-prob` — the incomplete / probabilistic
//!   database substrates (c-tables, event tables);
//! * `provsem-containment` — query containment (Section 9).
//!
//! ## Quick tour
//!
//! ```
//! use provsem_semiring::prelude::*;
//!
//! // Provenance polynomials: 2r² + rs, the provenance of (d,e) in Fig. 5(c).
//! let r = ProvenancePolynomial::var("r");
//! let s = ProvenancePolynomial::var("s");
//! let de = r.times(&r).repeat(2).plus(&r.times(&s));
//!
//! // Factorization (Theorem 4.3): evaluate at r=5, s=1 to recover the bag
//! // multiplicity 55 from Figure 3(b).
//! let v = Valuation::from_pairs([("r", Natural::from(5u64)), ("s", Natural::from(1u64))]);
//! assert_eq!(de.eval(&v), Natural::from(55u64));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boolean;
pub mod circuit;
pub mod events;
pub mod fuzzy;
pub mod fxhash;
pub mod homomorphism;
pub mod monomial;
pub mod natural;
pub mod ninfinity;
pub mod polynomial;
pub mod posbool;
pub mod power_series;
pub mod properties;
pub mod ring;
pub mod security;
pub mod traits;
pub mod tropical;
pub mod variable;
pub mod why;

/// A convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::boolean::Bool;
    pub use crate::circuit::{BoolCircuit, Circuit, CircuitEval, CircuitSession};
    pub use crate::events::{Event, WorldId};
    pub use crate::fuzzy::{Fuzzy, Viterbi};
    pub use crate::fxhash::{FxHashMap, FxHashSet};
    pub use crate::homomorphism::{
        BoolToSemiring, Compose, DropCoefficients, MapCoefficients, NatInfToBool, NaturalToBool,
        NaturalToNatInf, ToPosBool, ToWhySet, ToWitnesses,
    };
    pub use crate::monomial::{monomials_up_to_degree, Monomial};
    pub use crate::natural::Natural;
    pub use crate::ninfinity::NatInf;
    pub use crate::polynomial::{
        BoolPolynomial, EvalHom, NatInfPolynomial, Polynomial, ProvenancePolynomial, ZPolynomial,
    };
    pub use crate::posbool::{eval_posbool, PosBool};
    pub use crate::power_series::{solve_univariate, TruncatedSeries};
    pub use crate::ring::{
        CancellativePlus, DiffPair, Integers, LiftToDiff, Monus, NaturalToIntegers, Ring,
    };
    pub use crate::security::Clearance;
    pub use crate::traits::{
        CommutativeSemiring, DistributiveLattice, FiniteSemiring, FnHomomorphism, NaturallyOrdered,
        OmegaContinuous, PlusIdempotent, Portable, Semiring, SemiringHomomorphism,
    };
    pub use crate::tropical::Tropical;
    pub use crate::variable::{Valuation, Variable};
    pub use crate::why::{WhySet, Witness};
}

pub use prelude::*;

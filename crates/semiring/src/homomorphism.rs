//! A catalogue of standard semiring homomorphisms.
//!
//! Proposition 3.5 of the paper makes homomorphisms the key tool: applying a
//! homomorphism tuple-wise to a K-relation commutes with every RA⁺ query.
//! Together with the universality of ℕ\[X\] (Proposition 4.2) this yields the
//! factorization theorem — one provenance computation specializes to every
//! other annotation semantics. This module collects the concrete
//! homomorphisms used throughout the workspace, in particular the
//! *specialization hierarchy* of provenance semirings:
//!
//! ```text
//!     ℕ\[X\] ──→ 𝔹\[X\] ──→ Why(X) = P(P(X)) ──→ PosBool(X) ──→ (P(X),∪,∪)
//!       │
//!       └──→ ℕ  ──→ 𝔹        (drop provenance, keep multiplicity / existence)
//! ```

use crate::boolean::Bool;
use crate::natural::Natural;
use crate::ninfinity::NatInf;
use crate::polynomial::{BoolPolynomial, Polynomial, ProvenancePolynomial};
use crate::posbool::PosBool;
use crate::traits::{Semiring, SemiringHomomorphism};
use crate::tropical::Tropical;
use crate::why::{WhySet, Witness};

/// The support homomorphism `ℕ → 𝔹`, `n ↦ (n ≠ 0)`; drops multiplicities and
/// keeps existence (Proposition 5.4's sanity check uses its relational
/// analogue).
pub struct NaturalToBool;

impl SemiringHomomorphism<Natural, Bool> for NaturalToBool {
    fn apply(&self, a: &Natural) -> Bool {
        Bool::from(!a.is_zero())
    }
}

/// The inclusion `ℕ → ℕ∞`.
pub struct NaturalToNatInf;

impl SemiringHomomorphism<Natural, NatInf> for NaturalToNatInf {
    fn apply(&self, a: &Natural) -> NatInf {
        NatInf::Fin(a.value())
    }
}

/// The support homomorphism `ℕ∞ → 𝔹`.
pub struct NatInfToBool;

impl SemiringHomomorphism<NatInf, Bool> for NatInfToBool {
    fn apply(&self, a: &NatInf) -> Bool {
        Bool::from(!a.is_zero())
    }
}

/// The embedding `𝔹 → K` of the booleans into any semiring: `false ↦ 0`,
/// `true ↦ 1`. Used in the proof of Theorem 9.2 ("𝔹 can be homomorphically
/// embedded in K").
pub struct BoolToSemiring<K>(std::marker::PhantomData<K>);

impl<K> Default for BoolToSemiring<K> {
    fn default() -> Self {
        BoolToSemiring(std::marker::PhantomData)
    }
}

impl<K> BoolToSemiring<K> {
    /// Creates the embedding.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<K: Semiring> SemiringHomomorphism<Bool, K> for BoolToSemiring<K> {
    fn apply(&self, a: &Bool) -> K {
        if a.value() {
            K::one()
        } else {
            K::zero()
        }
    }
}

/// Forgetting coefficients: `ℕ\[X\] → 𝔹\[X\]` (how many times a monomial is
/// derived no longer matters, only whether it is).
pub struct DropCoefficients;

impl SemiringHomomorphism<ProvenancePolynomial, BoolPolynomial> for DropCoefficients {
    fn apply(&self, p: &ProvenancePolynomial) -> BoolPolynomial {
        p.map_coefficients(|c| Bool::from(!c.is_zero()))
    }
}

/// Forgetting coefficients *and* exponents: `ℕ\[X\] → PosBool(X)`. This is the
/// map under which provenance-polynomial evaluation becomes the
/// Imielinski–Lipski c-table computation.
pub struct ToPosBool;

impl SemiringHomomorphism<ProvenancePolynomial, PosBool> for ToPosBool {
    fn apply(&self, p: &ProvenancePolynomial) -> PosBool {
        p.to_posbool()
    }
}

/// Collapsing each monomial to its witness set: `ℕ\[X\] → Why(X)`.
pub struct ToWitnesses;

impl SemiringHomomorphism<ProvenancePolynomial, Witness> for ToWitnesses {
    fn apply(&self, p: &ProvenancePolynomial) -> Witness {
        p.witnesses()
    }
}

/// Collapsing everything to the set of contributing tuples:
/// `ℕ\[X\] → (P(X), ∪, ∪)` — the paper's why-provenance (Figure 5(b)).
///
/// **Caveat** (found by the property suite): because the target is the
/// degenerate why semiring (`0 = 1 = ∅`, so `·` does not annihilate), this
/// map satisfies the homomorphism laws only away from zero:
/// `h(0 · q) = ∅` but `h(0) · h(q) = vars(q)`. On non-zero polynomials all
/// four laws hold, which is the sense in which the specialization hierarchy
/// of the module docs ends at `(P(X), ∪, ∪)`.
pub struct ToWhySet;

impl SemiringHomomorphism<ProvenancePolynomial, WhySet> for ToWhySet {
    fn apply(&self, p: &ProvenancePolynomial) -> WhySet {
        p.why_provenance()
    }
}

/// "Cost reading" of a provenance polynomial: evaluating every variable at
/// cost 1 in the tropical semiring yields the size of the smallest derivation
/// (number of leaves of the cheapest monomial). Not a homomorphism from ℕ\[X\]
/// with a fixed valuation? It is: it is `Eval_v` for `v(x) = cost(1)`,
/// hence a homomorphism by Proposition 4.2.
pub struct ToMinimalDerivationSize;

impl SemiringHomomorphism<ProvenancePolynomial, Tropical> for ToMinimalDerivationSize {
    fn apply(&self, p: &ProvenancePolynomial) -> Tropical {
        let mut best = Tropical::zero();
        for (m, c) in p.terms() {
            if c.is_zero() {
                continue;
            }
            best = best.plus(&Tropical::cost(m.degree() as u64));
        }
        best
    }
}

/// Composition `second ∘ first` of two homomorphisms. Homomorphisms are
/// closed under composition, which is how the specialization hierarchy in
/// the module docs is actually traversed (e.g. `ℕ\[X\] → 𝔹\[X\] → Why(X)`).
///
/// The middle semiring `M` is not determined by the two homomorphism types,
/// so it appears as an explicit type parameter.
pub struct Compose<H1, H2, M> {
    first: H1,
    second: H2,
    _mid: std::marker::PhantomData<M>,
}

impl<H1, H2, M> Compose<H1, H2, M> {
    /// Composes `first : A → M` with `second : M → B`.
    pub fn new(first: H1, second: H2) -> Self {
        Compose {
            first,
            second,
            _mid: std::marker::PhantomData,
        }
    }
}

impl<A, M, B, H1, H2> SemiringHomomorphism<A, B> for Compose<H1, H2, M>
where
    A: Semiring,
    M: Semiring,
    B: Semiring,
    H1: SemiringHomomorphism<A, M>,
    H2: SemiringHomomorphism<M, B>,
{
    fn apply(&self, a: &A) -> B {
        self.second.apply(&self.first.apply(a))
    }
}

/// Generic coefficient-mapping homomorphism `K[X] → K'[X]` induced by a
/// coefficient homomorphism `K → K'`.
pub struct MapCoefficients<H> {
    inner: H,
}

impl<H> MapCoefficients<H> {
    /// Wraps a coefficient homomorphism.
    pub fn new(inner: H) -> Self {
        MapCoefficients { inner }
    }
}

impl<K1, K2, H> SemiringHomomorphism<Polynomial<K1>, Polynomial<K2>> for MapCoefficients<H>
where
    K1: Semiring,
    K2: Semiring,
    H: SemiringHomomorphism<K1, K2>,
{
    fn apply(&self, p: &Polynomial<K1>) -> Polynomial<K2> {
        p.map_coefficients(|c| self.inner.apply(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::properties::check_homomorphism;

    fn nat_samples() -> Vec<Natural> {
        (0u64..6).map(Natural::from).collect()
    }

    fn poly_samples() -> Vec<ProvenancePolynomial> {
        let p = ProvenancePolynomial::var("p");
        let r = ProvenancePolynomial::var("r");
        let s = ProvenancePolynomial::var("s");
        vec![
            ProvenancePolynomial::zero(),
            ProvenancePolynomial::one(),
            p.clone(),
            r.clone(),
            p.plus(&r),
            p.times(&r).plus(&s.pow(2).repeat(2)),
            r.times(&s),
        ]
    }

    #[test]
    fn natural_to_bool_is_a_homomorphism() {
        check_homomorphism(&NaturalToBool, &nat_samples()).unwrap();
    }

    #[test]
    fn natural_to_natinf_is_a_homomorphism() {
        check_homomorphism(&NaturalToNatInf, &nat_samples()).unwrap();
    }

    #[test]
    fn natinf_to_bool_is_a_homomorphism() {
        let samples = vec![NatInf::Fin(0), NatInf::Fin(1), NatInf::Fin(5), NatInf::Inf];
        check_homomorphism(&NatInfToBool, &samples).unwrap();
    }

    #[test]
    fn bool_embeds_into_plus_idempotent_semirings() {
        // 𝔹 embeds homomorphically exactly into semirings with idempotent +
        // (the lattice case used in Theorem 9.2); into ℕ it is not a
        // homomorphism because h(true ∨ true) = 1 ≠ 2 = h(true) + h(true).
        let samples = vec![Bool::from(false), Bool::from(true)];
        check_homomorphism(&BoolToSemiring::<PosBool>::new(), &samples).unwrap();
        check_homomorphism(&BoolToSemiring::<Tropical>::new(), &samples).unwrap();
        check_homomorphism(&BoolToSemiring::<crate::fuzzy::Fuzzy>::new(), &samples).unwrap();
        assert!(check_homomorphism(&BoolToSemiring::<Natural>::new(), &samples).is_err());
    }

    #[test]
    fn drop_coefficients_is_a_homomorphism() {
        check_homomorphism(&DropCoefficients, &poly_samples()).unwrap();
    }

    #[test]
    fn to_posbool_is_a_homomorphism() {
        check_homomorphism(&ToPosBool, &poly_samples()).unwrap();
    }

    #[test]
    fn to_witnesses_is_a_homomorphism() {
        check_homomorphism(&ToWitnesses, &poly_samples()).unwrap();
    }

    #[test]
    fn map_coefficients_lifts_homomorphisms() {
        let lifted = MapCoefficients::new(NaturalToBool);
        check_homomorphism(&lifted, &poly_samples()).unwrap();
    }

    #[test]
    fn composition_of_homomorphisms_is_a_homomorphism() {
        let composed = Compose::<_, _, NatInf>::new(NaturalToNatInf, NatInfToBool);
        check_homomorphism(&composed, &nat_samples()).unwrap();
        // ℕ → ℕ∞ → 𝔹 factors the direct support homomorphism.
        for n in nat_samples() {
            assert_eq!(composed.apply(&n), NaturalToBool.apply(&n));
        }
    }

    #[test]
    fn hierarchy_collapses_figure5_as_expected() {
        // 2s² + rs (provenance of (f,e) in Figure 5(c)).
        let fe = ProvenancePolynomial::from_terms([
            (Monomial::from_powers([("s", 2u32)]), Natural::from(2u64)),
            (Monomial::from_bag(["r", "s"]), Natural::from(1u64)),
        ]);
        // Why-provenance: {r, s} (Figure 5(b)).
        assert_eq!(ToWhySet.apply(&fe), WhySet::from_vars(["r", "s"]));
        // Witnesses: {{s}, {r,s}}.
        assert_eq!(
            ToWitnesses.apply(&fe),
            Witness::from_witnesses(vec![vec!["s"], vec!["r", "s"]])
        );
        // PosBool: s ∨ (r ∧ s) = s.
        assert_eq!(ToPosBool.apply(&fe), PosBool::var("s"));
        // Cheapest derivation uses two leaves.
        assert_eq!(ToMinimalDerivationSize.apply(&fe), Tropical::cost(2));
    }

    #[test]
    fn minimal_derivation_size_of_zero_is_unreachable() {
        assert_eq!(
            ToMinimalDerivationSize.apply(&ProvenancePolynomial::zero()),
            Tropical::unreachable()
        );
    }
}

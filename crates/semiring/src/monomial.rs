//! Monomials over provenance variables.
//!
//! A monomial is a finite multiset of variables, written multiplicatively
//! (`x²y` has `x ↦ 2, y ↦ 1`). Monomials form the commutative monoid `X⊕`
//! from Section 6 of the paper; provenance polynomials map monomials to ℕ
//! coefficients and formal power series map them to ℕ∞ coefficients.

use crate::variable::Variable;
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: a map from variables to positive exponents. The empty map is
/// the unit monomial ε.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Monomial {
    exponents: BTreeMap<Variable, u32>,
}

impl Monomial {
    /// The unit monomial ε (all exponents zero).
    pub fn unit() -> Self {
        Monomial::default()
    }

    /// The monomial consisting of a single variable with exponent 1.
    pub fn var(v: impl Into<Variable>) -> Self {
        let mut exponents = BTreeMap::new();
        exponents.insert(v.into(), 1);
        Monomial { exponents }
    }

    /// Builds a monomial from `(variable, exponent)` pairs; zero exponents
    /// are dropped, repeated variables have their exponents added.
    pub fn from_powers<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (V, u32)>,
        V: Into<Variable>,
    {
        let mut m = Monomial::unit();
        for (v, e) in pairs {
            m.multiply_var(v.into(), e);
        }
        m
    }

    /// Builds a monomial from a bag of variables (each occurrence adds 1 to
    /// the exponent) — the `fringe(τ)` of a derivation tree in the paper.
    pub fn from_bag<I, V>(vars: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Variable>,
    {
        let mut m = Monomial::unit();
        for v in vars {
            m.multiply_var(v.into(), 1);
        }
        m
    }

    /// Multiplies this monomial by `v^e` in place.
    pub fn multiply_var(&mut self, v: Variable, e: u32) {
        if e == 0 {
            return;
        }
        *self.exponents.entry(v).or_insert(0) += e;
    }

    /// Monomial multiplication (exponent-wise addition).
    pub fn multiply(&self, other: &Monomial) -> Monomial {
        let mut result = self.clone();
        for (v, e) in &other.exponents {
            result.multiply_var(v.clone(), *e);
        }
        result
    }

    /// The exponent of `v` (0 if absent).
    pub fn exponent(&self, v: &Variable) -> u32 {
        self.exponents.get(v).copied().unwrap_or(0)
    }

    /// Total degree: the sum of all exponents.
    pub fn degree(&self) -> u32 {
        self.exponents.values().sum()
    }

    /// Is this the unit monomial ε?
    pub fn is_unit(&self) -> bool {
        self.exponents.is_empty()
    }

    /// The variables occurring with positive exponent.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        self.exponents.keys()
    }

    /// Iterates over `(variable, exponent)` pairs.
    pub fn powers(&self) -> impl Iterator<Item = (&Variable, u32)> {
        self.exponents.iter().map(|(v, e)| (v, *e))
    }

    /// Divisibility: `self` divides `other` iff every exponent of `self` is
    /// at most the corresponding exponent of `other`. Used by the
    /// Monomial-Coefficient algorithm (Figure 9) to prune derivation trees
    /// whose fringe exceeds the target monomial.
    pub fn divides(&self, other: &Monomial) -> bool {
        self.exponents.iter().all(|(v, e)| other.exponent(v) >= *e)
    }

    /// The quotient `other / self` when `self` divides `other`.
    pub fn quotient(&self, other: &Monomial) -> Option<Monomial> {
        if !self.divides(other) {
            return None;
        }
        let mut exponents = BTreeMap::new();
        for (v, e) in &other.exponents {
            let rem = e - self.exponent(v);
            if rem > 0 {
                exponents.insert(v.clone(), rem);
            }
        }
        Some(Monomial { exponents })
    }

    /// Drops exponents, keeping just the set of variables used — the
    /// projection onto "which tuples" that underlies why-provenance.
    pub fn support(&self) -> std::collections::BTreeSet<Variable> {
        self.exponents.keys().cloned().collect()
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "ε");
        }
        let mut first = true;
        for (v, e) in &self.exponents {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if *e == 1 {
                write!(f, "{v}")?;
            } else {
                write!(f, "{v}^{e}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Enumerates all monomials over `vars` with total degree at most
/// `max_degree`, in a deterministic order. Used for truncated power series
/// and for exhaustive small-case testing.
pub fn monomials_up_to_degree(vars: &[Variable], max_degree: u32) -> Vec<Monomial> {
    let mut result = vec![Monomial::unit()];
    let mut frontier = vec![Monomial::unit()];
    for _ in 0..max_degree {
        let mut next = Vec::new();
        for m in &frontier {
            for v in vars {
                let mut extended = m.clone();
                extended.multiply_var(v.clone(), 1);
                next.push(extended);
            }
        }
        next.sort();
        next.dedup();
        result.extend(next.iter().cloned());
        frontier = next;
    }
    result.sort();
    result.dedup();
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Variable {
        Variable::new(name)
    }

    #[test]
    fn unit_monomial_is_identity() {
        let m = Monomial::from_powers([("x", 2u32), ("y", 1)]);
        assert_eq!(Monomial::unit().multiply(&m), m);
        assert_eq!(m.multiply(&Monomial::unit()), m);
        assert!(Monomial::unit().is_unit());
        assert_eq!(Monomial::unit().degree(), 0);
    }

    #[test]
    fn multiplication_adds_exponents() {
        let a = Monomial::from_powers([("x", 2u32)]);
        let b = Monomial::from_powers([("x", 1u32), ("y", 3)]);
        let prod = a.multiply(&b);
        assert_eq!(prod.exponent(&v("x")), 3);
        assert_eq!(prod.exponent(&v("y")), 3);
        assert_eq!(prod.degree(), 6);
    }

    #[test]
    fn from_bag_counts_occurrences() {
        // fringe of a derivation tree using r once and s twice: r·s².
        let m = Monomial::from_bag(["r", "s", "s"]);
        assert_eq!(m.exponent(&v("r")), 1);
        assert_eq!(m.exponent(&v("s")), 2);
        assert_eq!(m, Monomial::from_powers([("r", 1u32), ("s", 2)]));
    }

    #[test]
    fn divisibility_and_quotient() {
        let rs2 = Monomial::from_powers([("r", 1u32), ("s", 2)]);
        let rs = Monomial::from_powers([("r", 1u32), ("s", 1)]);
        assert!(rs.divides(&rs2));
        assert!(!rs2.divides(&rs));
        assert_eq!(
            rs.quotient(&rs2),
            Some(Monomial::from_powers([("s", 1u32)]))
        );
        assert_eq!(rs2.quotient(&rs), None);
        assert!(Monomial::unit().divides(&rs2));
    }

    #[test]
    fn zero_exponents_are_normalized_away() {
        let m = Monomial::from_powers([("x", 0u32), ("y", 2)]);
        assert_eq!(m.variables().count(), 1);
        assert_eq!(m.exponent(&v("x")), 0);
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = Monomial::var("x");
        let b = Monomial::var("y");
        let ab = a.multiply(&b);
        let mut ms = [ab.clone(), b.clone(), Monomial::unit(), a.clone()];
        ms.sort();
        assert_eq!(ms[0], Monomial::unit());
        // The exact order of the rest only needs to be deterministic.
        assert_eq!(ms.len(), 4);
    }

    #[test]
    fn support_drops_exponents() {
        let m = Monomial::from_powers([("r", 1u32), ("s", 2)]);
        let supp = m.support();
        assert!(supp.contains(&v("r")));
        assert!(supp.contains(&v("s")));
        assert_eq!(supp.len(), 2);
    }

    #[test]
    fn enumeration_up_to_degree_two() {
        let vars = vec![v("x"), v("y")];
        let ms = monomials_up_to_degree(&vars, 2);
        // ε, x, y, x², xy, y² — the prefix of X⊕ listed in Section 6.
        assert_eq!(ms.len(), 6);
        assert!(ms.contains(&Monomial::unit()));
        assert!(ms.contains(&Monomial::from_powers([("x", 2u32)])));
        assert!(ms.contains(&Monomial::from_powers([("x", 1u32), ("y", 1)])));
    }

    #[test]
    fn enumeration_counts_match_stars_and_bars() {
        let vars = vec![v("x"), v("y"), v("z")];
        // Number of monomials over 3 variables with degree ≤ 3 is C(6,3) = 20.
        let ms = monomials_up_to_degree(&vars, 3);
        assert_eq!(ms.len(), 20);
    }
}

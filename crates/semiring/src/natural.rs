//! The semiring of natural numbers `(ℕ, +, ·, 0, 1)` — bag (multiset)
//! semantics.
//!
//! A tuple's annotation is its multiplicity (Figure 3 of the paper). ℕ is
//! naturally ordered but *not* ω-complete: ω-chains such as `1 ≤ 2 ≤ 3 ≤ ⋯`
//! have no least upper bound, which is why datalog on bags needs the
//! completion ℕ∞ ([`crate::ninfinity::NatInf`]).

use crate::traits::{CommutativeSemiring, NaturallyOrdered, Semiring};
use std::fmt;
use std::ops::{Add, Mul};

/// An element of ℕ (a tuple multiplicity). Arithmetic panics on overflow in
/// debug builds and is checked explicitly in [`Natural::checked_plus`] /
/// [`Natural::checked_times`] for callers that need graceful failure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Natural(pub u64);

impl Natural {
    /// Builds a multiplicity from a `u64`.
    pub const fn new(n: u64) -> Self {
        Natural(n)
    }

    /// The wrapped value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Overflow-checked addition.
    pub fn checked_plus(self, other: Self) -> Option<Self> {
        self.0.checked_add(other.0).map(Natural)
    }

    /// Overflow-checked multiplication.
    pub fn checked_times(self, other: Self) -> Option<Self> {
        self.0.checked_mul(other.0).map(Natural)
    }

    /// Truncated subtraction (`monus`): `a ∸ b = max(a - b, 0)`. This is the
    /// "proper subtraction" operation the paper's conclusion mentions as the
    /// natural candidate for extending the framework with difference.
    pub fn monus(self, other: Self) -> Self {
        Natural(self.0.saturating_sub(other.0))
    }
}

impl From<u64> for Natural {
    fn from(n: u64) -> Self {
        Natural(n)
    }
}

impl From<u32> for Natural {
    fn from(n: u32) -> Self {
        Natural(n as u64)
    }
}

impl From<Natural> for u64 {
    fn from(n: Natural) -> Self {
        n.0
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        Natural(self.0 + rhs.0)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        Natural(self.0 * rhs.0)
    }
}

impl Semiring for Natural {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Natural(0)
    }

    fn one() -> Self {
        Natural(1)
    }

    fn plus(&self, other: &Self) -> Self {
        Natural(
            self.0
                .checked_add(other.0)
                .expect("multiplicity overflow in ℕ; use NatInf for unbounded computations"),
        )
    }

    fn times(&self, other: &Self) -> Self {
        Natural(
            self.0
                .checked_mul(other.0)
                .expect("multiplicity overflow in ℕ; use NatInf for unbounded computations"),
        )
    }

    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    fn is_one(&self) -> bool {
        self.0 == 1
    }
}

impl CommutativeSemiring for Natural {}

impl NaturallyOrdered for Natural {
    fn natural_leq(&self, other: &Self) -> bool {
        // a ≤ b ⇔ ∃x. a + x = b ⇔ a ≤ b numerically.
        self.0 <= other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::check_semiring_laws;
    use proptest::prelude::*;

    fn samples() -> Vec<Natural> {
        vec![0u64, 1, 2, 3, 5, 7, 10, 55]
            .into_iter()
            .map(Natural::from)
            .collect()
    }

    #[test]
    fn natural_semiring_laws() {
        check_semiring_laws(&samples()).expect("ℕ must satisfy the semiring laws");
    }

    #[test]
    fn plus_is_not_idempotent() {
        // The paper stresses that idempotence of union fails for bags.
        let two = Natural::from(2u64);
        assert_ne!(two.plus(&two), two);
    }

    #[test]
    fn natural_order_is_numeric_order() {
        assert!(Natural::from(3u64).natural_leq(&Natural::from(5u64)));
        assert!(!Natural::from(5u64).natural_leq(&Natural::from(3u64)));
    }

    #[test]
    fn monus_truncates_at_zero() {
        assert_eq!(
            Natural::from(5u64).monus(Natural::from(3u64)),
            Natural::from(2u64)
        );
        assert_eq!(
            Natural::from(3u64).monus(Natural::from(5u64)),
            Natural::zero()
        );
    }

    #[test]
    fn checked_operations_detect_overflow() {
        let big = Natural::from(u64::MAX);
        assert_eq!(big.checked_plus(Natural::from(1u64)), None);
        assert_eq!(big.checked_times(Natural::from(2u64)), None);
        assert_eq!(
            Natural::from(6u64).checked_times(Natural::from(7u64)),
            Some(Natural::from(42u64))
        );
    }

    proptest! {
        #[test]
        fn prop_commutative_and_distributive(a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000) {
            let (a, b, c) = (Natural(a), Natural(b), Natural(c));
            prop_assert_eq!(a.plus(&b), b.plus(&a));
            prop_assert_eq!(a.times(&b), b.times(&a));
            prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
        }

        #[test]
        fn prop_repeat_matches_multiplication(a in 0u64..1000, n in 0u64..1000) {
            prop_assert_eq!(Natural(a).repeat(n), Natural(a * n));
        }

        #[test]
        fn prop_natural_order_witness(a in 0u64..10_000, b in 0u64..10_000) {
            // a ≤ b iff there exists x with a + x = b; the witness is b - a.
            let na = Natural(a);
            let nb = Natural(b);
            if na.natural_leq(&nb) {
                let x = Natural(b - a);
                prop_assert_eq!(na.plus(&x), nb);
            } else {
                prop_assert!(a > b);
            }
        }
    }
}

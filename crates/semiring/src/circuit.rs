//! Hash-consed **provenance circuits**: ℕ\[X\] represented as a shared DAG.
//!
//! The expanded [`Polynomial`] representation of ℕ\[X\] is canonical but loses
//! all sharing: a join output annotation `(x₁+y₁)·(x₂+y₂)·⋯·(xₙ+yₙ)`
//! expands into `2ⁿ` monomials, and specializing every output tuple
//! re-evaluates common subexpressions from scratch. This module keeps the
//! *same* semiring elements in **circuit form**: interned DAG nodes
//! (`0 | 1 | x | a + b | a · b`) behind a process-wide sharded arena with
//! structural hash-consing, handled through [`Circuit`] — a `Copy` node id that
//! implements [`Semiring`]/[`CommutativeSemiring`] and therefore drops into
//! every generic K-relation, planned-engine, and datalog entry point
//! unchanged.
//!
//! The theory is exactly that of Section 4 of the paper: ℕ\[X\] is the free
//! commutative semiring on X (Proposition 4.2), so *any* syntax tree over
//! `{0, 1, +, ·} ∪ X` denotes a unique element of ℕ\[X\], and every valuation
//! `v : X → K` extends to a unique homomorphism `Eval_v : ℕ\[X\] → K`. The
//! factorization theorem (Theorem 4.3) — "compute the query once over ℕ\[X\],
//! specialize everywhere" — does not care *how* the ℕ\[X\] element is
//! represented. Circuits make the theorem cheap in practice:
//!
//! * `+`/`·` are O(1) hash-consing lookups instead of monomial-map merges;
//! * [`CircuitEval`] memoizes `Eval_v` bottom-up over the shared DAG, so a
//!   node reused by many output tuples is evaluated **once per valuation**;
//! * [`Circuit::to_polynomial`] is the memoized lowering back to the
//!   expanded canonical form (used for equality, display, and as the
//!   differential-testing reference).
//!
//! Equality of handles is **semantic** (lowering both sides to the canonical
//! polynomial), so the commutative-semiring laws hold on the nose; the cheap
//! structural checks are reserved for [`Semiring::is_zero`] /
//! [`Semiring::is_one`], which the smart constructors keep exact (`0` and
//! `1` fold away, and ℕ\[X\] has no zero divisors and no non-trivial units).
//!
//! # Arena lifecycle
//!
//! Node storage is **process-wide and sharded**: every thread interns into
//! the same store, partitioned into 16 FxHash-indexed shards so
//! concurrent sessions contend only when they hash to the same shard, and
//! structurally identical subcircuits built by *different* sessions are the
//! same global node. Handle *validity*, by contrast, stays per-thread:
//! every handle carries the **generation** of the thread that interned it,
//! [`reset`] opens a new generation on the calling thread (O(1), no storage
//! touched — other sessions may be reading those nodes), and using a handle
//! from a dead generation panics with a "stale circuit handle" message
//! instead of silently reading another computation's nodes. Prefer the
//! scoped [`CircuitSession`] guard over calling [`reset`] by hand — it
//! opens a generation on entry and on drop, [`reset`] refuses to run while
//! a session is active on this thread, and any number of threads can each
//! run their own session concurrently.
//!
//! Memory is reclaimed by the explicit, global [`vacuum`]: it truncates
//! every shard back to the constants and advances a process-wide epoch so
//! *all* threads' outstanding handles go stale (checked under the shard
//! lock, so a racing traversal panics loudly rather than reading recycled
//! slots). Vacuum only at quiescent points — between benchmark iterations,
//! or in a serving system's maintenance window.
//!
//! # Crossing threads
//!
//! Handles are deliberately `!Send`: a handle's generation stamp is only
//! meaningful against the generation counter of the thread that created it.
//! What *can* cross threads is an exported batch: [`Semiring::to_portable`]
//! re-encodes the sub-DAG reachable from a batch of handles into an
//! arena-independent node list (children referenced by position), and
//! [`Semiring::from_portable`] re-interns that list on the receiving
//! thread — hash-consing deduplicates against whatever the shared store
//! already holds (a same-process import is pure lookup), and the smart
//! constructors restore the id-sorted-operand invariant. This is how the
//! morsel-driven parallel executor of `provsem-core` runs
//! `tag_database_circuit → query → specialize_circuit` across worker
//! threads and merges the results back in deterministic partition order.

use crate::fxhash::{fx_hash_one, FxHashMap};
use crate::polynomial::{Polynomial, ProvenancePolynomial};
use crate::posbool::PosBool;
use crate::traits::{CommutativeSemiring, PlusIdempotent, Portable, Semiring};
use crate::variable::{Valuation, Variable};
use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

const ZERO: u32 = 0;
const ONE: u32 = 1;

/// The generation stamp of the constant handles `0` and `1`, which survive
/// every reset and are therefore valid in all generations.
const GEN_CONST: u32 = u32::MAX;

/// Number of interner shards. A power of two so the shard of an id is a
/// mask; 16 is comfortably above any realistic worker-thread count for the
/// morsel executor and the query service's session threads.
const NUM_SHARDS: usize = 16;
const SHARD_BITS: u32 = NUM_SHARDS.trailing_zeros();

/// One interned circuit node. `Plus`/`Times` children are global node ids
/// that are always interned before the node itself (the smart constructors
/// build bottom-up), but — unlike the old thread-local arena — child ids are
/// *not* numerically smaller than the parent's: ids interleave shard bits,
/// so traversals use explicit reachability, never id order.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Node {
    Zero,
    One,
    Var(Variable),
    Plus(u32, u32),
    Times(u32, u32),
}

/// One shard of the process-wide hash-consing interner.
#[derive(Default)]
struct ShardState {
    nodes: Vec<Node>,
    interned: FxHashMap<Node, u32>,
}

/// The process-wide sharded interner: every thread and session interns into
/// the same node store, partitioned by FxHash of the node so concurrent
/// sessions contend only when they intern into the same shard. Structural
/// sharing therefore crosses sessions: two sessions building the same
/// subcircuit get the *same* global node.
fn shards() -> &'static [Mutex<ShardState>; NUM_SHARDS] {
    static SHARDS: OnceLock<[Mutex<ShardState>; NUM_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| std::array::from_fn(|_| Mutex::new(ShardState::default())))
}

/// Bumped by every [`vacuum`]; threads detect the bump on their next arena
/// access and stale their outstanding handles (see [`sync_epoch`]).
static VACUUM_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Number of [`CircuitSession`] guards active across *all* threads; guards
/// [`vacuum`], which must only run at quiescent points.
static ACTIVE_SESSIONS: AtomicU64 = AtomicU64::new(0);

/// Per-thread lifecycle state. Nodes are shared process-wide; *validity* of
/// handles is still scoped per thread: every handle carries the generation
/// of the thread that created it, and [`reset`]/[`CircuitSession`] bump the
/// thread's generation so stale handles panic loudly. (Handles are `!Send`,
/// so a handle is only ever checked against its creating thread's
/// generation.)
#[derive(Clone, Copy)]
struct Local {
    generation: u32,
    in_session: bool,
    /// The [`VACUUM_EPOCH`] this thread last observed; a mismatch means a
    /// vacuum happened since and the thread's handles must go stale.
    synced_epoch: u64,
}

thread_local! {
    static LOCAL: Cell<Local> = const {
        Cell::new(Local {
            generation: 1,
            in_session: false,
            synced_epoch: 0,
        })
    };
}

fn bump_generation(local: &mut Local) {
    local.generation = local
        .generation
        .checked_add(1)
        .expect("circuit arena generation counter overflowed");
}

/// Re-reads the global vacuum epoch; if it advanced since this thread's last
/// arena access, bumps the thread's generation (staling every outstanding
/// handle of this thread) and records the new epoch. Returns `true` iff the
/// epoch advanced. Called under the shard lock by every arena access, which
/// makes vacuuming sound: a node read either happens before the vacuum's
/// truncation (old epoch observed, data intact) or observes the new epoch
/// and refuses.
fn sync_epoch() -> bool {
    let epoch = VACUUM_EPOCH.load(Ordering::SeqCst);
    LOCAL.with(|cell| {
        let mut local = cell.get();
        if local.synced_epoch == epoch {
            return false;
        }
        bump_generation(&mut local);
        local.synced_epoch = epoch;
        cell.set(local);
        true
    })
}

fn lock_shard(index: usize) -> MutexGuard<'static, ShardState> {
    shards()[index]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Global id of slot `slot` in shard `shard`. Ids `0`/`1` are the constants
/// of every arena; all interned nodes start at 2, with the shard index in
/// the low bits.
fn encode_id(shard: usize, slot: usize) -> u32 {
    let slot = u32::try_from(slot).expect("circuit arena shard exceeded u32 slots");
    assert!(
        slot <= (u32::MAX - 2) >> SHARD_BITS,
        "circuit arena exceeded u32 node ids"
    );
    ((slot << SHARD_BITS) | shard as u32) + 2
}

/// Inverse of [`encode_id`] for ids ≥ 2.
fn decode_id(id: u32) -> (usize, usize) {
    let raw = id - 2;
    (
        (raw & (NUM_SHARDS as u32 - 1)) as usize,
        (raw >> SHARD_BITS) as usize,
    )
}

fn shard_of_node(node: &Node) -> usize {
    (fx_hash_one(node) as usize) & (NUM_SHARDS - 1)
}

/// The thread's current generation, after syncing with the vacuum epoch —
/// what fresh handles are stamped with and stale checks compare against.
fn current_generation() -> u32 {
    sync_epoch();
    LOCAL.with(|cell| cell.get().generation)
}

/// Clones one node out of the shared arena. Takes a raw id reached from an
/// already generation-checked root handle; if a [`vacuum`] intervened since
/// this thread's previous access, the traversal is torn and this panics
/// loudly instead of reading truncated (or re-populated) slots.
fn node_of(id: u32) -> Node {
    match id {
        ZERO => return Node::Zero,
        ONE => return Node::One,
        _ => {}
    }
    let (shard, slot) = decode_id(id);
    let guard = lock_shard(shard);
    assert!(
        !sync_epoch(),
        "circuit arena vacuumed while a traversal was in flight; \
         vacuum() must only run at quiescent points"
    );
    guard.nodes[slot].clone()
}

/// Generation-checks a root handle against this thread's current generation.
fn check_handle(handle: &Circuit) {
    let current = current_generation();
    assert!(
        handle.id <= ONE || handle.gen == current,
        "stale circuit handle: the arena was reset (generation {} is gone, current is {}); \
         scope handle lifetimes with CircuitSession",
        handle.gen,
        current
    );
}

fn make_handle(id: u32) -> Circuit {
    Circuit {
        id,
        gen: if id <= ONE {
            GEN_CONST
        } else {
            LOCAL.with(|cell| cell.get().generation)
        },
        _not_send: PhantomData,
    }
}

fn intern_in_shard(guard: &mut ShardState, shard: usize, node: Node) -> u32 {
    if let Some(&id) = guard.interned.get(&node) {
        return id;
    }
    let id = encode_id(shard, guard.nodes.len());
    guard.nodes.push(node.clone());
    guard.interned.insert(node, id);
    id
}

/// Interns a leaf (or imported) node — one with no live-handle operands, so
/// only the epoch sync is needed before touching the shard.
fn intern(node: Node) -> Circuit {
    let shard = shard_of_node(&node);
    let mut guard = lock_shard(shard);
    sync_epoch();
    let id = intern_in_shard(&mut guard, shard, node);
    drop(guard);
    make_handle(id)
}

/// Generation-checks both operands *under the shard lock* (after syncing
/// with the vacuum epoch, so operands staled by a concurrent vacuum are
/// caught before their ids are baked into a new node) and interns the
/// combination — the hot path of [`Semiring::plus`]/[`Semiring::times`].
fn intern_pair(a: &Circuit, b: &Circuit, make: impl FnOnce(u32, u32) -> Node) -> Circuit {
    let (x, y) = if a.id <= b.id {
        (a.id, b.id)
    } else {
        (b.id, a.id)
    };
    let node = make(x, y);
    let shard = shard_of_node(&node);
    let mut guard = lock_shard(shard);
    check_handle(a);
    check_handle(b);
    let id = intern_in_shard(&mut guard, shard, node);
    drop(guard);
    make_handle(id)
}

/// Number of nodes currently interned in the process-wide arena (including
/// the two constants). A direct measure of total provenance size with
/// sharing — shared across every thread and session.
pub fn arena_node_count() -> usize {
    2 + (0..NUM_SHARDS)
        .map(|shard| lock_shard(shard).nodes.len())
        .sum::<usize>()
}

/// An upper bound on every currently valid node id plus one — what
/// id-indexed scratch tables (reachability marks, memo vectors) size
/// themselves by. At least 2 (the constants); with sharding, ids are not
/// dense, so this can exceed [`arena_node_count`].
fn id_capacity() -> usize {
    let max_slots = (0..NUM_SHARDS)
        .map(|shard| lock_shard(shard).nodes.len())
        .max()
        .unwrap_or(0);
    2 + max_slots * NUM_SHARDS
}

/// Invalidates every outstanding [`Circuit`] handle and [`CircuitEval`] memo
/// of *this thread* by opening a new generation: using a stale handle
/// afterwards **panics** instead of silently aliasing another computation's
/// nodes. Call between independent provenance computations — or, better,
/// scope the computation in a [`CircuitSession`].
///
/// Since the arena became a process-wide sharded interner, `reset` no longer
/// truncates node storage (other sessions may be reading it); nodes are
/// retained for cross-session structural sharing and are reclaimed only by
/// [`vacuum`] at a globally quiescent point.
///
/// # Panics
/// Panics if a [`CircuitSession`] is active on this thread.
pub fn reset() {
    sync_epoch();
    LOCAL.with(|cell| {
        let mut local = cell.get();
        assert!(
            !local.in_session,
            "circuit::reset() called while a CircuitSession is active; drop the session instead"
        );
        bump_generation(&mut local);
        cell.set(local);
    });
}

/// Truncates the process-wide sharded arena back to the constants `0` and
/// `1`, reclaiming every interned node, and advances the global vacuum
/// epoch so that **all** threads' outstanding handles go stale (each thread
/// detects the epoch bump on its next arena access and panics on any
/// pre-vacuum handle instead of aliasing re-populated slots).
///
/// This is the memory-reclamation point the per-thread [`reset`] gave up
/// when the arena became shared: call it only when no session is running
/// and no thread holds live circuits — between benchmark iterations, or in
/// a serving system's maintenance window. A concurrent traversal that races
/// a vacuum panics loudly ("vacuumed while a traversal was in flight"); it
/// never reads aliased nodes.
///
/// # Panics
/// Panics if any [`CircuitSession`] is active on any thread.
pub fn vacuum() {
    assert!(
        ACTIVE_SESSIONS.load(Ordering::SeqCst) == 0,
        "circuit::vacuum() called while a CircuitSession is active; vacuum only at quiescent points"
    );
    VACUUM_EPOCH.fetch_add(1, Ordering::SeqCst);
    for shard in 0..NUM_SHARDS {
        let mut guard = lock_shard(shard);
        guard.nodes.clear();
        guard.interned.clear();
    }
    // Sync the calling thread immediately: its next use of a pre-vacuum
    // handle reports "stale circuit handle" rather than a torn traversal.
    sync_epoch();
}

/// A scoped guard for the circuit-handle lifecycle: construction opens a
/// fresh generation on this thread (staling whatever handles preceded it),
/// and dropping the guard opens another, staling every handle the session
/// created.
///
/// The guard closes the classic footgun of the bare [`reset`] API — some
/// library code calling `reset()` while the caller still holds handles,
/// which before the generation stamps would *silently* re-read the arena.
/// While a session is active, [`reset`] panics instead of running (and
/// [`vacuum`] refuses process-wide); handles that escape the session panic
/// on first use (their generation is gone). Sessions are per-thread and do
/// not nest — but any number of threads may each run their own session
/// concurrently over the shared sharded arena, which is exactly how the
/// query service scopes per-request provenance work.
///
/// ```
/// use provsem_semiring::circuit::{self, CircuitSession};
/// use provsem_semiring::{Circuit, Semiring};
///
/// let leaked = CircuitSession::run(|| {
///     let p = Circuit::var("p");
///     assert!(!p.is_zero());
///     p.node_id() // plain data may leave the session; handles should not
/// });
/// assert!(leaked >= 2);
/// ```
pub struct CircuitSession {
    /// Sessions guard this thread's generation counter, so the guard itself
    /// must not move to another thread.
    _not_send: PhantomData<*const ()>,
}

impl CircuitSession {
    /// Opens a fresh generation on this thread and a session scoped to the
    /// returned guard.
    ///
    /// # Panics
    /// Panics if a session is already active on this thread.
    pub fn begin() -> CircuitSession {
        sync_epoch();
        LOCAL.with(|cell| {
            let mut local = cell.get();
            assert!(
                !local.in_session,
                "CircuitSession::begin() while another session is active; sessions do not nest"
            );
            bump_generation(&mut local);
            local.in_session = true;
            cell.set(local);
        });
        ACTIVE_SESSIONS.fetch_add(1, Ordering::SeqCst);
        CircuitSession {
            _not_send: PhantomData,
        }
    }

    /// Runs `f` inside a fresh session; the thread's generation advances
    /// before and after. Returning a [`Circuit`] handle (or anything holding
    /// one) from `f` is a bug — the handle's generation dies with the
    /// session, so any later use panics.
    pub fn run<R>(f: impl FnOnce() -> R) -> R {
        let _session = CircuitSession::begin();
        f()
    }
}

impl Drop for CircuitSession {
    fn drop(&mut self) {
        LOCAL.with(|cell| {
            let mut local = cell.get();
            local.in_session = false;
            bump_generation(&mut local);
            cell.set(local);
        });
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A handle to a hash-consed provenance circuit: an element of ℕ\[X\] in
/// shared-DAG form.
///
/// `Circuit` is a `Copy` arena node id, so cloning annotations — which the
/// relational operators do per row — is free, and structurally identical
/// subcircuits are built exactly once. See the [module docs](self) for the
/// arena lifecycle and the equality semantics.
#[derive(Clone, Copy)]
pub struct Circuit {
    id: u32,
    /// The arena generation this handle was interned under; checked against
    /// the arena on every use so a handle that outlives a [`reset`] fails
    /// loudly instead of aliasing a node of the next query. The constants
    /// `0`/`1` carry [`GEN_CONST`] and are valid in every generation.
    gen: u32,
    /// The generation stamp is only meaningful against the creating
    /// thread's generation counter, so the handle opts out of
    /// `Send`/`Sync`. Batches of handles cross threads through
    /// [`Semiring::to_portable`] instead.
    _not_send: PhantomData<*const ()>,
}

impl Circuit {
    /// The circuit consisting of a single variable (a tuple id).
    pub fn var(v: impl Into<Variable>) -> Circuit {
        intern(Node::Var(v.into()))
    }

    /// The constant circuit `n` (the canonical embedding ℕ → ℕ\[X\]), built
    /// with double-and-add so it has O(log n) nodes.
    pub fn constant(n: u64) -> Circuit {
        Circuit::one().repeat(n)
    }

    /// Builds a circuit denoting the given expanded polynomial (sum of
    /// coefficient-weighted monomial products). Inverse of
    /// [`Circuit::to_polynomial`] up to representation.
    pub fn from_polynomial(p: &ProvenancePolynomial) -> Circuit {
        let mut acc = Circuit::zero();
        for (monomial, coeff) in p.terms() {
            let mut term = Circuit::constant(coeff.value());
            for (var, exp) in monomial.powers() {
                term.times_assign(&Circuit::var(var.clone()).pow(exp));
            }
            acc.plus_assign(&term);
        }
        acc
    }

    /// The raw arena node id. Stable for the lifetime of the current arena
    /// generation; structural equality of ids implies semantic equality.
    pub fn node_id(&self) -> usize {
        self.id as usize
    }

    /// Are the two handles the *same interned node* (of the same arena
    /// generation)? A cheap, sound (but incomplete) equality: structurally
    /// identical circuits are always the same node, semantically equal ones
    /// need not be.
    pub fn same_node(&self, other: &Circuit) -> bool {
        self.id == other.id && (self.id <= ONE || self.gen == other.gen)
    }

    /// Number of distinct nodes reachable from this handle — the size of the
    /// circuit *with* sharing. Compare with
    /// [`Polynomial::num_terms`] of the lowering to see the blowup avoided.
    pub fn node_count(&self) -> usize {
        shared_node_count([*self])
    }

    /// Lowers the circuit to the expanded canonical [`ProvenancePolynomial`],
    /// memoized over the DAG (each shared node is expanded once). This is
    /// the compatibility bridge to the polynomial API — and inherently pays
    /// the exponential expansion the circuit representation avoids, so use
    /// it for tests and display, not on hot paths.
    pub fn to_polynomial(&self) -> ProvenancePolynomial {
        let mut memo: Vec<Option<ProvenancePolynomial>> = Vec::new();
        fold_memo(*self, &mut memo, &mut LowerAlgebra)
    }

    /// One-off memoized evaluation `Eval_v` into any commutative semiring
    /// (Proposition 4.2). To amortize the memo across *many* roots — the
    /// whole point of sharing — use one [`CircuitEval`] for all of them.
    pub fn eval<K: CommutativeSemiring>(&self, valuation: &Valuation<K>) -> K {
        CircuitEval::new(valuation).eval(*self)
    }
}

/// Total number of distinct nodes reachable from any of the given roots —
/// the size of a whole provenance-annotated result with sharing.
pub fn shared_node_count(roots: impl IntoIterator<Item = Circuit>) -> usize {
    let mut seen: Vec<bool> = vec![false; id_capacity()];
    let mut stack: Vec<u32> = roots
        .into_iter()
        .map(|c| {
            check_handle(&c);
            c.id
        })
        .collect();
    let mut count = 0;
    while let Some(id) = stack.pop() {
        let slot = &mut seen[id as usize];
        if *slot {
            continue;
        }
        *slot = true;
        count += 1;
        match node_of(id) {
            Node::Zero | Node::One | Node::Var(_) => {}
            Node::Plus(a, b) | Node::Times(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    count
}

/// How to interpret each node shape; drives the iterative memoized fold.
trait NodeAlgebra {
    type Out: Clone;
    fn zero(&mut self) -> Self::Out;
    fn one(&mut self) -> Self::Out;
    fn var(&mut self, v: &Variable) -> Self::Out;
    fn plus(&mut self, a: &Self::Out, b: &Self::Out) -> Self::Out;
    fn times(&mut self, a: &Self::Out, b: &Self::Out) -> Self::Out;
}

/// Iterative (explicit-stack) bottom-up fold over the sub-DAG reachable from
/// `root`, memoized in `memo` by node id. Reusing the same `memo` across
/// roots is what amortizes shared nodes across all the tuples of a result.
fn fold_memo<A: NodeAlgebra>(
    root: Circuit,
    memo: &mut Vec<Option<A::Out>>,
    algebra: &mut A,
) -> A::Out {
    check_handle(&root);
    // Sharded ids interleave shard bits, so a child's id may exceed its
    // parent's — grow the memo for whichever id shows up.
    fn ensure<T>(memo: &mut Vec<Option<T>>, id: u32) {
        if memo.len() <= id as usize {
            memo.resize_with(id as usize + 1, || None);
        }
    }
    ensure(memo, root.id);
    let mut stack: Vec<u32> = vec![root.id];
    while let Some(&id) = stack.last() {
        if memo[id as usize].is_some() {
            stack.pop();
            continue;
        }
        let node = node_of(id);
        let value = match node {
            Node::Zero => Some(algebra.zero()),
            Node::One => Some(algebra.one()),
            Node::Var(ref v) => Some(algebra.var(v)),
            Node::Plus(a, b) | Node::Times(a, b) => {
                ensure(memo, a.max(b));
                match (&memo[a as usize], &memo[b as usize]) {
                    (Some(x), Some(y)) => Some(if matches!(node, Node::Plus(_, _)) {
                        algebra.plus(x, y)
                    } else {
                        algebra.times(x, y)
                    }),
                    (x, y) => {
                        if x.is_none() {
                            stack.push(a);
                        }
                        if y.is_none() {
                            stack.push(b);
                        }
                        None
                    }
                }
            }
        };
        if let Some(value) = value {
            memo[id as usize] = Some(value);
            stack.pop();
        }
    }
    memo[root.node_id()]
        .clone()
        .expect("root was just computed")
}

struct LowerAlgebra;

impl NodeAlgebra for LowerAlgebra {
    type Out = ProvenancePolynomial;

    fn zero(&mut self) -> ProvenancePolynomial {
        Polynomial::zero()
    }
    fn one(&mut self) -> ProvenancePolynomial {
        Polynomial::one()
    }
    fn var(&mut self, v: &Variable) -> ProvenancePolynomial {
        Polynomial::var(v.clone())
    }
    fn plus(&mut self, a: &ProvenancePolynomial, b: &ProvenancePolynomial) -> ProvenancePolynomial {
        a.plus(b)
    }
    fn times(
        &mut self,
        a: &ProvenancePolynomial,
        b: &ProvenancePolynomial,
    ) -> ProvenancePolynomial {
        a.times(b)
    }
}

struct EvalAlgebra<'v, K> {
    valuation: &'v Valuation<K>,
}

impl<K: CommutativeSemiring> NodeAlgebra for EvalAlgebra<'_, K> {
    type Out = K;

    fn zero(&mut self) -> K {
        K::zero()
    }
    fn one(&mut self) -> K {
        K::one()
    }
    fn var(&mut self, v: &Variable) -> K {
        // Unassigned variables evaluate to 0, matching
        // `Polynomial::evaluate_with`.
        self.valuation.get(v).cloned().unwrap_or_else(K::zero)
    }
    fn plus(&mut self, a: &K, b: &K) -> K {
        a.plus(b)
    }
    fn times(&mut self, a: &K, b: &K) -> K {
        a.times(b)
    }
}

/// The memoized evaluation homomorphism `Eval_v : ℕ\[X\] → K` of Proposition
/// 4.2, over circuits: each arena node reachable from any evaluated root is
/// computed **once** for the lifetime of the evaluator, so specializing a
/// whole K-relation of circuit annotations costs one bottom-up pass over the
/// shared DAG instead of one expansion per tuple (Theorem 4.3 at circuit
/// speed).
///
/// The memo is keyed by arena node id and is invalidated — like every
/// handle — by [`reset`].
pub struct CircuitEval<'v, K> {
    algebra: EvalAlgebra<'v, K>,
    memo: Vec<Option<K>>,
    /// The arena generation the memo belongs to (set on first eval); an
    /// evaluator reused across a [`reset`] panics instead of serving memo
    /// entries for nodes that no longer exist.
    generation: Option<u32>,
    /// The memo's validity is pinned to *this thread's* generation counter,
    /// which cannot be checked from another thread (every fresh thread
    /// starts at generation 1) — so the evaluator, like the handles it
    /// caches, must not cross threads. Parallel specialization builds one
    /// evaluator per worker instead.
    _not_send: PhantomData<*const ()>,
}

impl<'v, K: CommutativeSemiring> CircuitEval<'v, K> {
    /// Creates the evaluator for one valuation.
    pub fn new(valuation: &'v Valuation<K>) -> Self {
        CircuitEval {
            algebra: EvalAlgebra { valuation },
            memo: Vec::new(),
            generation: None,
            _not_send: PhantomData,
        }
    }

    /// Evaluates one root, reusing every previously memoized node.
    pub fn eval(&mut self, circuit: Circuit) -> K {
        let current = current_generation();
        match self.generation {
            None => self.generation = Some(current),
            Some(generation) => assert!(
                generation == current,
                "CircuitEval memo outlived a circuit::reset(); build a fresh evaluator"
            ),
        }
        fold_memo(circuit, &mut self.memo, &mut self.algebra)
    }

    /// How many distinct nodes have been evaluated so far — the real work
    /// performed, regardless of how many roots shared them.
    pub fn evaluated_nodes(&self) -> usize {
        self.memo.iter().filter(|slot| slot.is_some()).count()
    }
}

impl Semiring for Circuit {
    fn zero() -> Self {
        Circuit {
            id: ZERO,
            gen: GEN_CONST,
            _not_send: PhantomData,
        }
    }

    fn one() -> Self {
        Circuit {
            id: ONE,
            gen: GEN_CONST,
            _not_send: PhantomData,
        }
    }

    /// O(1): folds the additive identity and interns a `Plus` node with
    /// id-sorted operands (so `a + b` and `b + a` share one node).
    fn plus(&self, other: &Self) -> Self {
        if self.id == ZERO {
            return *other;
        }
        if other.id == ZERO {
            return *self;
        }
        intern_pair(self, other, Node::Plus)
    }

    /// O(1): folds the multiplicative identities/annihilator and interns a
    /// `Times` node with id-sorted operands.
    fn times(&self, other: &Self) -> Self {
        if self.id == ZERO || other.id == ZERO {
            return Circuit::zero();
        }
        if self.id == ONE {
            return *other;
        }
        if other.id == ONE {
            return *self;
        }
        intern_pair(self, other, Node::Times)
    }

    /// Exact *and* O(1): the smart constructors fold `0` away, and ℕ\[X\] has
    /// no zero divisors, so only the interned `Zero` node denotes 0.
    fn is_zero(&self) -> bool {
        self.id == ZERO
    }

    /// Exact *and* O(1): `1` folds away, sums of two non-zero ℕ\[X\] elements
    /// exceed 1 coefficient-wise, and 1 is the only unit of ℕ\[X\], so only
    /// the interned `One` node denotes 1.
    fn is_one(&self) -> bool {
        self.id == ONE
    }

    /// Circuits cross threads by re-encoding, not by copying ids: the
    /// portable form is the reachable sub-DAG as a position-indexed node
    /// list, and importing re-interns it into the receiving thread's
    /// arena. See the module docs, "Crossing threads".
    fn is_portable() -> bool {
        true
    }

    fn to_portable(batch: Vec<Self>) -> Portable {
        Portable::new(export_circuits(&batch))
    }

    fn from_portable(token: Portable) -> Vec<Self> {
        import_circuits(token.unwrap::<PortableCircuits>())
    }
}

/// The arena-independent encoding of a batch of circuits: the non-constant
/// nodes reachable from the batch, renumbered densely in topological order.
/// Position `k` of `nodes` has portable id `k + 2` (ids `0`/`1` are the
/// constants of *every* arena); `Plus`/`Times` children are portable ids,
/// always smaller than the node's own — so importing is a single in-order
/// pass.
struct PortableCircuits {
    nodes: Vec<PortableNode>,
    /// Portable id of each circuit in the exported batch, in batch order.
    roots: Vec<u32>,
}

enum PortableNode {
    Var(Variable),
    Plus(u32, u32),
    Times(u32, u32),
}

/// Encodes the sub-DAG reachable from `batch` into portable form.
/// Deterministic for a given arena numbering: nodes are emitted in explicit
/// depth-first postorder from the roots (children before parents — sharded
/// ids interleave shard bits, so ascending id order is *not* topological).
fn export_circuits(batch: &[Circuit]) -> PortableCircuits {
    let mut remap: FxHashMap<u32, u32> = FxHashMap::default();
    remap.insert(ZERO, ZERO);
    remap.insert(ONE, ONE);
    let mut nodes: Vec<PortableNode> = Vec::new();
    // (id, node, expanded): a composite node is pushed back once its
    // children are scheduled, and emitted when popped the second time.
    let mut stack: Vec<(u32, Node, bool)> = Vec::new();
    for circuit in batch.iter().rev() {
        check_handle(circuit);
        if !remap.contains_key(&circuit.id) {
            stack.push((circuit.id, node_of(circuit.id), false));
        }
    }
    while let Some((id, node, expanded)) = stack.pop() {
        if remap.contains_key(&id) {
            continue;
        }
        let emit = |nodes: &mut Vec<PortableNode>, node: PortableNode| {
            let portable = u32::try_from(nodes.len() + 2).expect("portable circuit id overflow");
            nodes.push(node);
            portable
        };
        match node {
            Node::Zero | Node::One => unreachable!("constants have the reserved ids 0 and 1"),
            Node::Var(v) => {
                let portable = emit(&mut nodes, PortableNode::Var(v));
                remap.insert(id, portable);
            }
            Node::Plus(a, b) | Node::Times(a, b) if !expanded => {
                stack.push((id, node, true));
                for child in [a, b] {
                    if !remap.contains_key(&child) {
                        stack.push((child, node_of(child), false));
                    }
                }
            }
            Node::Plus(a, b) => {
                let portable = emit(&mut nodes, PortableNode::Plus(remap[&a], remap[&b]));
                remap.insert(id, portable);
            }
            Node::Times(a, b) => {
                let portable = emit(&mut nodes, PortableNode::Times(remap[&a], remap[&b]));
                remap.insert(id, portable);
            }
        }
    }
    PortableCircuits {
        nodes,
        roots: batch.iter().map(|c| remap[&c.id]).collect(),
    }
}

/// Re-interns a portable batch into the *current* thread's arena. Building
/// through the smart constructors restores the id-sorted-operand invariant
/// under this arena's numbering and lets hash-consing deduplicate against
/// nodes the arena already holds, so repeated imports never balloon it.
fn import_circuits(portable: PortableCircuits) -> Vec<Circuit> {
    let mut handles: Vec<Circuit> = Vec::with_capacity(portable.nodes.len() + 2);
    handles.push(Circuit::zero());
    handles.push(Circuit::one());
    for node in portable.nodes {
        let handle = match node {
            PortableNode::Var(v) => Circuit::var(v),
            PortableNode::Plus(a, b) => handles[a as usize].plus(&handles[b as usize]),
            PortableNode::Times(a, b) => handles[a as usize].times(&handles[b as usize]),
        };
        handles.push(handle);
    }
    portable
        .roots
        .into_iter()
        .map(|r| handles[r as usize])
        .collect()
}

impl CommutativeSemiring for Circuit {}

impl PartialEq for Circuit {
    /// Semantic equality in ℕ\[X\]: identical nodes fast-path to `true`,
    /// otherwise both sides are lowered to the canonical expanded polynomial
    /// (exponential in the worst case — fine for tests and assertions, which
    /// is where circuit equality is used; the engines only call the O(1)
    /// [`Semiring::is_zero`]).
    fn eq(&self, other: &Self) -> bool {
        self.same_node(other) || self.to_polynomial() == other.to_polynomial()
    }
}

impl Eq for Circuit {}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Small circuits print as their polynomial; big ones would blow up
        // the expansion, so print a size summary instead.
        let nodes = self.node_count();
        if nodes <= 64 {
            write!(f, "{:?}", self.to_polynomial())
        } else {
            write!(f, "circuit#{}⟨{} nodes⟩", self.id, nodes)
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The same hash-consed circuit read **modulo absorption**: a handle whose
/// equality is taken in PosBool(X) (coefficients and exponents dropped, the
/// canonical surjection ℕ\[X\] → PosBool(X) of Section 4) instead of ℕ\[X\].
///
/// Because the surjection is a semiring homomorphism, all commutative-
/// semiring laws transfer, and `+` becomes **idempotent**: `a + a` interns a
/// new node but denotes the same PosBool element, so `BoolCircuit` lawfully
/// claims [`PlusIdempotent`]. This is the circuit form of boolean
/// provenance: identical sharing, c-table semantics.
#[derive(Clone, Copy)]
pub struct BoolCircuit(Circuit);

impl BoolCircuit {
    /// The circuit consisting of a single boolean variable.
    pub fn var(v: impl Into<Variable>) -> BoolCircuit {
        BoolCircuit(Circuit::var(v))
    }

    /// The underlying ℕ\[X\]-circuit handle (same arena node).
    pub fn circuit(&self) -> Circuit {
        self.0
    }

    /// Lowers to the canonical [`PosBool`] normal form (exponential in the
    /// worst case, like [`Circuit::to_polynomial`]).
    pub fn to_posbool(&self) -> PosBool {
        self.0.to_polynomial().to_posbool()
    }
}

impl From<Circuit> for BoolCircuit {
    fn from(circuit: Circuit) -> Self {
        BoolCircuit(circuit)
    }
}

impl Semiring for BoolCircuit {
    fn zero() -> Self {
        BoolCircuit(Circuit::zero())
    }
    fn one() -> Self {
        BoolCircuit(Circuit::one())
    }
    fn plus(&self, other: &Self) -> Self {
        BoolCircuit(self.0.plus(&other.0))
    }
    fn times(&self, other: &Self) -> Self {
        BoolCircuit(self.0.times(&other.0))
    }

    /// Exact and O(1): a non-zero ℕ\[X\] element maps to a non-false PosBool
    /// element (the surjection preserves having at least one monomial).
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
    // `is_one` keeps the default semantic check: in PosBool, `x + 1 = 1`,
    // so circuits other than the interned `One` node can denote true.

    /// Transported exactly like [`Circuit`] (same arena nodes).
    fn is_portable() -> bool {
        true
    }

    fn to_portable(batch: Vec<Self>) -> Portable {
        Circuit::to_portable(batch.into_iter().map(|b| b.0).collect())
    }

    fn from_portable(token: Portable) -> Vec<Self> {
        Circuit::from_portable(token)
            .into_iter()
            .map(BoolCircuit)
            .collect()
    }
}

impl CommutativeSemiring for BoolCircuit {}
impl PlusIdempotent for BoolCircuit {}

impl PartialEq for BoolCircuit {
    fn eq(&self, other: &Self) -> bool {
        self.0.same_node(&other.0) || self.to_posbool() == other.to_posbool()
    }
}

impl Eq for BoolCircuit {}

impl fmt::Debug for BoolCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nodes = self.0.node_count();
        if nodes <= 64 {
            write!(f, "{:?}", self.to_posbool())
        } else {
            write!(f, "bool-circuit#{}⟨{} nodes⟩", self.0.id, nodes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::monomial::Monomial;
    use crate::natural::Natural;
    use crate::properties::check_semiring_laws;
    use crate::tropical::Tropical;

    fn x(name: &str) -> Circuit {
        Circuit::var(name)
    }

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn constants_and_identities_fold_structurally() {
        let a = x("a");
        assert!(Circuit::zero().is_zero());
        assert!(Circuit::one().is_one());
        assert!(a.plus(&Circuit::zero()).same_node(&a));
        assert!(Circuit::zero().plus(&a).same_node(&a));
        assert!(a.times(&Circuit::one()).same_node(&a));
        assert!(a.times(&Circuit::zero()).is_zero());
        assert!(!a.is_zero() && !a.is_one());
    }

    #[test]
    fn hash_consing_shares_structurally_equal_nodes() {
        // (Global node counts are shared with concurrently running tests,
        // so sharing is asserted through handle identity, not counts.)
        let e1 = x("p").times(&x("r")).plus(&x("s"));
        let e2 = x("p").times(&x("r")).plus(&x("s"));
        assert!(e1.same_node(&e2));
        // Commutativity is shared structurally via operand sorting.
        assert!(x("p").plus(&x("r")).same_node(&x("r").plus(&x("p"))));
        assert!(x("p").times(&x("r")).same_node(&x("r").times(&x("p"))));
        // Sharing crosses threads: the sharded arena is process-wide, so a
        // worker building the same subcircuit lands on the same node.
        let here = x("p").times(&x("r")).node_id();
        let there = std::thread::scope(|s| {
            s.spawn(|| x("p").times(&x("r")).node_id())
                .join()
                .expect("worker")
        });
        assert_eq!(here, there);
    }

    #[test]
    fn lowering_matches_polynomial_arithmetic() {
        // Figure 5(c) for (d,e): r·r + r·r + r·s = 2r² + rs.
        let de = x("r")
            .times(&x("r"))
            .plus(&x("r").times(&x("r")))
            .plus(&x("r").times(&x("s")));
        let expected = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        assert_eq!(de.to_polynomial(), expected);
    }

    #[test]
    fn semantic_equality_crosses_association() {
        let l = x("a").plus(&x("b")).plus(&x("c"));
        let r = x("a").plus(&x("b").plus(&x("c")));
        assert!(!l.same_node(&r));
        assert_eq!(l, r);
        assert_ne!(l, x("a").plus(&x("b")));
    }

    #[test]
    fn eval_agrees_with_polynomial_eval() {
        let e = x("p")
            .times(&x("p"))
            .repeat(2)
            .plus(&x("r").times(&x("s")))
            .plus(&Circuit::constant(3));
        let v = Valuation::from_pairs([("p", nat(2)), ("r", nat(5)), ("s", nat(1))]);
        assert_eq!(e.eval(&v), e.to_polynomial().eval(&v));
        let vt = Valuation::from_pairs([
            ("p", Tropical::cost(2)),
            ("r", Tropical::cost(5)),
            ("s", Tropical::cost(1)),
        ]);
        assert_eq!(e.eval(&vt), e.to_polynomial().eval(&vt));
        // Unassigned variables evaluate to zero, like the polynomial path.
        let partial = Valuation::from_pairs([("p", nat(2))]);
        assert_eq!(x("q").eval(&partial), Natural::zero());
    }

    #[test]
    fn iterated_squaring_stays_linear_in_circuit_form() {
        // (a + b)^(2^k) has 2^k + 1 expanded terms but O(k) circuit nodes;
        // memoized evaluation recovers the closed form 2^(2^k) at a = b = 1.
        let mut square = x("a").plus(&x("b"));
        const K: u32 = 5;
        for _ in 0..K {
            square = square.times(&square);
        }
        assert!(square.node_count() <= 4 + K as usize);
        let ones = Valuation::from_pairs([("a", nat(1)), ("b", nat(1))]);
        assert_eq!(square.eval(&ones), nat(2u64.pow(2u32.pow(K))));
    }

    #[test]
    fn product_of_sums_is_exponential_expanded_but_linear_shared() {
        // Π (xᵢ + yᵢ) for 40 factors: 2^40 expanded monomials — far beyond
        // materializing — but ~4 nodes per factor in circuit form.
        let mut product = Circuit::one();
        for i in 0..40 {
            product
                .times_assign(&Circuit::var(format!("x{i}")).plus(&Circuit::var(format!("y{i}"))));
        }
        assert!(product.node_count() <= 1 + 4 * 40);
        let all_ones = Valuation::from_pairs(
            (0..40).flat_map(|i| [(format!("x{i}"), nat(1)), (format!("y{i}"), nat(1))]),
        );
        assert_eq!(product.eval(&all_ones), nat(1u64 << 40));
    }

    #[test]
    fn circuit_eval_memo_is_shared_across_roots() {
        let shared = x("a").plus(&x("b")).times(&x("c"));
        let r1 = shared.times(&x("d"));
        let r2 = shared.times(&x("e"));
        let v = Valuation::from_pairs([
            ("a", nat(1)),
            ("b", nat(2)),
            ("c", nat(3)),
            ("d", nat(4)),
            ("e", nat(5)),
        ]);
        let mut eval = CircuitEval::new(&v);
        assert_eq!(eval.eval(r1), nat(36));
        let after_first = eval.evaluated_nodes();
        assert_eq!(eval.eval(r2), nat(45));
        // The second root only added its two fresh nodes (e, shared·e).
        assert_eq!(eval.evaluated_nodes(), after_first + 2);
    }

    #[test]
    fn from_polynomial_round_trips() {
        let p = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
            (Monomial::unit(), nat(7)),
        ]);
        assert_eq!(Circuit::from_polynomial(&p).to_polynomial(), p);
        assert!(Circuit::from_polynomial(&Polynomial::zero()).is_zero());
        assert!(Circuit::from_polynomial(&Polynomial::one()).is_one());
    }

    #[test]
    fn reference_harness_accepts_circuit_samples() {
        let samples = vec![
            Circuit::zero(),
            Circuit::one(),
            x("p"),
            x("r"),
            x("p").plus(&x("r")),
            x("p").times(&x("r")).plus(&Circuit::constant(2)),
        ];
        check_semiring_laws(&samples).expect("circuit semiring laws");
    }

    #[test]
    fn reset_stales_handles_without_truncating_shared_storage() {
        let kept = x("tmp1").times(&x("tmp2"));
        let grown = arena_node_count();
        reset();
        // Storage is shared with other sessions, so reset reclaims nothing
        // (vacuum() does, at quiescent points — see tests/arena_lifecycle.rs);
        // it only stales this thread's handles.
        assert!(arena_node_count() >= grown);
        assert!(std::panic::catch_unwind(|| kept.node_count()).is_err());
        // The arena is usable again immediately.
        assert_eq!(
            x("tmp1").eval(&Valuation::from_pairs([("tmp1", nat(9))])),
            nat(9)
        );
    }

    #[test]
    fn shared_node_count_over_several_roots() {
        reset();
        let a = x("a");
        let b = x("b");
        let ab = a.times(&b);
        // Roots {ab, a} reach {0?, no — just a, b, ab}: 3 nodes.
        assert_eq!(shared_node_count([ab, a]), 3);
        assert_eq!(shared_node_count([Circuit::zero()]), 1);
        assert_eq!(shared_node_count(Vec::new()), 0);
    }

    #[test]
    fn bool_circuit_is_plus_idempotent_and_absorptive() {
        let p = BoolCircuit::var("p");
        let r = BoolCircuit::var("r");
        assert_eq!(p.plus(&p), p);
        assert_eq!(p.times(&p), p);
        // Absorption: p + p·r = p in PosBool.
        assert_eq!(p.plus(&p.times(&r)), p);
        assert_ne!(p.plus(&r), p);
        // ℕ[X]-equality is finer: the same nodes are *not* equal as Circuit.
        assert_ne!(p.circuit().plus(&p.circuit()), p.circuit());
    }

    #[test]
    fn stale_handles_panic_instead_of_aliasing_the_new_generation() {
        let old = x("victim").times(&x("witness"));
        reset();
        // The new generation keeps interning into the shared store; the old
        // handle still refers to live nodes but its generation is gone.
        let _ = x("other").times(&x("another"));
        let err = std::panic::catch_unwind(|| old.to_polynomial())
            .expect_err("stale handle must not read the reset arena");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("stale circuit handle"), "{message}");
        // Constants survive every reset.
        assert!(Circuit::zero().is_zero());
        assert!(Circuit::one().plus(&Circuit::zero()).is_one());
    }

    #[test]
    fn circuit_eval_refuses_a_memo_across_reset() {
        let v: Valuation<Natural> = Valuation::from_pairs([("a", nat(2))]);
        let mut eval = CircuitEval::new(&v);
        assert_eq!(eval.eval(x("a")), nat(2));
        reset();
        let fresh = x("a");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval.eval(fresh)))
            .expect_err("memo must not survive a reset");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("CircuitEval memo outlived"), "{message}");
    }

    #[test]
    fn sessions_scope_handle_lifetimes_and_block_bare_resets() {
        reset();
        let escaped = CircuitSession::run(|| {
            let inside = x("inside").plus(&x("session"));
            // A bare reset under a session is the footgun the guard closes.
            let err = std::panic::catch_unwind(reset).expect_err("reset under session");
            let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(message.contains("CircuitSession is active"), "{message}");
            inside
        });
        // A handle that escapes its session is stale, not silently aliased.
        assert!(std::panic::catch_unwind(|| escaped.node_count()).is_err());
        // Sessions do not nest on one thread...
        CircuitSession::run(|| {
            assert!(std::panic::catch_unwind(CircuitSession::begin).is_err());
        });
        // ...but sequential sessions compose, and resets work again after.
        CircuitSession::run(|| assert!(!x("s1").is_zero()));
        CircuitSession::run(|| assert!(!x("s2").is_zero()));
        reset();
        assert!(!x("after").is_zero());
    }

    #[test]
    fn portable_round_trip_preserves_semantics_and_sharing() {
        let shared = x("a").plus(&x("b"));
        let batch = vec![
            Circuit::zero(),
            Circuit::one(),
            shared.times(&shared),
            shared.times(&x("c")),
            Circuit::constant(3),
        ];
        let expected: Vec<ProvenancePolynomial> =
            batch.iter().map(Circuit::to_polynomial).collect();
        let token = Circuit::to_portable(batch.clone());
        // Same thread: importing dedups against the shared store, so the
        // round trip returns the very same nodes.
        let back = Circuit::from_portable(token);
        for (orig, round) in batch.iter().zip(&back) {
            assert!(orig.same_node(round));
        }
        // Cross thread: node storage is shared, so the import is pure
        // lookup and the handles land on the same global ids — but stamped
        // with the *worker's* generation, so they are usable over there.
        let ids: Vec<usize> = batch.iter().map(Circuit::node_id).collect();
        let token = Circuit::to_portable(batch);
        let (imported_ids, lowered) = std::thread::scope(|s| {
            s.spawn(move || {
                let imported = Circuit::from_portable(token);
                let ids: Vec<usize> = imported.iter().map(Circuit::node_id).collect();
                let lowered: Vec<ProvenancePolynomial> =
                    imported.iter().map(Circuit::to_polynomial).collect();
                (ids, lowered)
            })
            .join()
            .expect("worker")
        });
        assert_eq!(imported_ids, ids);
        assert_eq!(lowered, expected);
    }

    #[test]
    fn bool_circuit_portability_matches_circuit() {
        assert!(BoolCircuit::is_portable() && Circuit::is_portable());
        let batch = vec![BoolCircuit::var("p").plus(&BoolCircuit::var("r"))];
        let expected = batch[0].to_posbool();
        let token = BoolCircuit::to_portable(batch);
        let back = BoolCircuit::from_portable(token);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].to_posbool(), expected);
    }

    #[test]
    fn bool_circuit_eval_through_posbool() {
        let e = BoolCircuit::var("p")
            .times(&BoolCircuit::var("r"))
            .plus(&BoolCircuit::var("p"));
        assert_eq!(e.to_posbool(), PosBool::var("p"));
        let v = Valuation::from_pairs([("p", Bool::from(true)), ("r", Bool::from(false))]);
        assert_eq!(e.circuit().eval(&v), Bool::from(true));
    }
}

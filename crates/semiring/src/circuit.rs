//! Hash-consed **provenance circuits**: ℕ\[X\] represented as a shared DAG.
//!
//! The expanded [`Polynomial`] representation of ℕ\[X\] is canonical but loses
//! all sharing: a join output annotation `(x₁+y₁)·(x₂+y₂)·⋯·(xₙ+yₙ)`
//! expands into `2ⁿ` monomials, and specializing every output tuple
//! re-evaluates common subexpressions from scratch. This module keeps the
//! *same* semiring elements in **circuit form**: interned DAG nodes
//! (`0 | 1 | x | a + b | a · b`) behind a thread-local arena with structural
//! hash-consing, handled through [`Circuit`] — a `Copy` node id that
//! implements [`Semiring`]/[`CommutativeSemiring`] and therefore drops into
//! every generic K-relation, planned-engine, and datalog entry point
//! unchanged.
//!
//! The theory is exactly that of Section 4 of the paper: ℕ\[X\] is the free
//! commutative semiring on X (Proposition 4.2), so *any* syntax tree over
//! `{0, 1, +, ·} ∪ X` denotes a unique element of ℕ\[X\], and every valuation
//! `v : X → K` extends to a unique homomorphism `Eval_v : ℕ\[X\] → K`. The
//! factorization theorem (Theorem 4.3) — "compute the query once over ℕ\[X\],
//! specialize everywhere" — does not care *how* the ℕ\[X\] element is
//! represented. Circuits make the theorem cheap in practice:
//!
//! * `+`/`·` are O(1) hash-consing lookups instead of monomial-map merges;
//! * [`CircuitEval`] memoizes `Eval_v` bottom-up over the shared DAG, so a
//!   node reused by many output tuples is evaluated **once per valuation**;
//! * [`Circuit::to_polynomial`] is the memoized lowering back to the
//!   expanded canonical form (used for equality, display, and as the
//!   differential-testing reference).
//!
//! Equality of handles is **semantic** (lowering both sides to the canonical
//! polynomial), so the commutative-semiring laws hold on the nose; the cheap
//! structural checks are reserved for [`Semiring::is_zero`] /
//! [`Semiring::is_one`], which the smart constructors keep exact (`0` and
//! `1` fold away, and ℕ\[X\] has no zero divisors and no non-trivial units).
//!
//! # Arena lifecycle
//!
//! The arena is thread-local and append-only; [`reset`] truncates it back to
//! the constants in O(1) drops per node (no per-handle bookkeeping — handles
//! are `Copy` and never own anything), retaining map capacity for reuse
//! across queries. Resetting invalidates every outstanding [`Circuit`]
//! handle and [`CircuitEval`] memo of the thread; callers must reset only
//! between independent queries. Handles are deliberately `!Send`: a node id
//! is meaningless in another thread's arena.

use crate::polynomial::{Polynomial, ProvenancePolynomial};
use crate::posbool::PosBool;
use crate::traits::{CommutativeSemiring, PlusIdempotent, Semiring};
use crate::variable::{Valuation, Variable};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::marker::PhantomData;

const ZERO: u32 = 0;
const ONE: u32 = 1;

/// One interned circuit node. `Plus`/`Times` children are arena indices that
/// are always smaller than the node's own index (children are interned
/// first), so the arena order is a topological order of every DAG in it.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Node {
    Zero,
    One,
    Var(Variable),
    Plus(u32, u32),
    Times(u32, u32),
}

/// The thread-local hash-consing arena.
struct Arena {
    nodes: Vec<Node>,
    interned: HashMap<Node, u32>,
}

impl Arena {
    fn new() -> Arena {
        let mut arena = Arena {
            nodes: Vec::new(),
            interned: HashMap::new(),
        };
        arena.reset();
        arena
    }

    /// Truncates back to the two constants, keeping allocated capacity.
    fn reset(&mut self) {
        self.nodes.clear();
        self.interned.clear();
        self.nodes.push(Node::Zero);
        self.nodes.push(Node::One);
        self.interned.insert(Node::Zero, ZERO);
        self.interned.insert(Node::One, ONE);
    }

    fn intern(&mut self, node: Node) -> u32 {
        if let Some(&id) = self.interned.get(&node) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("circuit arena exceeded u32 node ids");
        self.nodes.push(node.clone());
        self.interned.insert(node, id);
        id
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Clones one node out of the arena. Borrowing is scoped to the lookup so
/// that semiring operations of the *output* domain (which may themselves be
/// circuits, e.g. circuit-to-circuit substitution) can re-enter the arena.
fn node_of(id: u32) -> Node {
    ARENA.with(|arena| arena.borrow().nodes[id as usize].clone())
}

fn intern(node: Node) -> u32 {
    ARENA.with(|arena| arena.borrow_mut().intern(node))
}

/// Number of nodes currently interned in this thread's arena (including the
/// two constants). A direct measure of total provenance size with sharing.
pub fn arena_node_count() -> usize {
    ARENA.with(|arena| arena.borrow().nodes.len())
}

/// Bulk-resets this thread's circuit arena back to the constants `0` and
/// `1`, retaining allocated capacity for the next query.
///
/// Every outstanding [`Circuit`] handle and [`CircuitEval`] memo of this
/// thread is invalidated; using one afterwards yields nodes of the *new*
/// generation (or panics on an out-of-range id). Call only between
/// independent provenance computations.
pub fn reset() {
    ARENA.with(|arena| arena.borrow_mut().reset());
}

/// A handle to a hash-consed provenance circuit: an element of ℕ\[X\] in
/// shared-DAG form.
///
/// `Circuit` is a `Copy` arena node id, so cloning annotations — which the
/// relational operators do per row — is free, and structurally identical
/// subcircuits are built exactly once. See the [module docs](self) for the
/// arena lifecycle and the equality semantics.
#[derive(Clone, Copy)]
pub struct Circuit {
    id: u32,
    /// Node ids are meaningless across threads (each thread has its own
    /// arena), so the handle opts out of `Send`/`Sync`.
    _not_send: PhantomData<*const ()>,
}

impl Circuit {
    fn from_id(id: u32) -> Circuit {
        Circuit {
            id,
            _not_send: PhantomData,
        }
    }

    /// The circuit consisting of a single variable (a tuple id).
    pub fn var(v: impl Into<Variable>) -> Circuit {
        Circuit::from_id(intern(Node::Var(v.into())))
    }

    /// The constant circuit `n` (the canonical embedding ℕ → ℕ\[X\]), built
    /// with double-and-add so it has O(log n) nodes.
    pub fn constant(n: u64) -> Circuit {
        Circuit::one().repeat(n)
    }

    /// Builds a circuit denoting the given expanded polynomial (sum of
    /// coefficient-weighted monomial products). Inverse of
    /// [`Circuit::to_polynomial`] up to representation.
    pub fn from_polynomial(p: &ProvenancePolynomial) -> Circuit {
        let mut acc = Circuit::zero();
        for (monomial, coeff) in p.terms() {
            let mut term = Circuit::constant(coeff.value());
            for (var, exp) in monomial.powers() {
                term.times_assign(&Circuit::var(var.clone()).pow(exp));
            }
            acc.plus_assign(&term);
        }
        acc
    }

    /// The raw arena node id. Stable for the lifetime of the current arena
    /// generation; structural equality of ids implies semantic equality.
    pub fn node_id(&self) -> usize {
        self.id as usize
    }

    /// Are the two handles the *same interned node*? A cheap, sound (but
    /// incomplete) equality: structurally identical circuits are always the
    /// same node, semantically equal ones need not be.
    pub fn same_node(&self, other: &Circuit) -> bool {
        self.id == other.id
    }

    /// Number of distinct nodes reachable from this handle — the size of the
    /// circuit *with* sharing. Compare with
    /// [`Polynomial::num_terms`] of the lowering to see the blowup avoided.
    pub fn node_count(&self) -> usize {
        shared_node_count([*self])
    }

    /// Lowers the circuit to the expanded canonical [`ProvenancePolynomial`],
    /// memoized over the DAG (each shared node is expanded once). This is
    /// the compatibility bridge to the polynomial API — and inherently pays
    /// the exponential expansion the circuit representation avoids, so use
    /// it for tests and display, not on hot paths.
    pub fn to_polynomial(&self) -> ProvenancePolynomial {
        let mut memo: Vec<Option<ProvenancePolynomial>> = Vec::new();
        fold_memo(*self, &mut memo, &mut LowerAlgebra)
    }

    /// One-off memoized evaluation `Eval_v` into any commutative semiring
    /// (Proposition 4.2). To amortize the memo across *many* roots — the
    /// whole point of sharing — use one [`CircuitEval`] for all of them.
    pub fn eval<K: CommutativeSemiring>(&self, valuation: &Valuation<K>) -> K {
        CircuitEval::new(valuation).eval(*self)
    }
}

/// Total number of distinct nodes reachable from any of the given roots —
/// the size of a whole provenance-annotated result with sharing.
pub fn shared_node_count(roots: impl IntoIterator<Item = Circuit>) -> usize {
    let mut seen: Vec<bool> = vec![false; arena_node_count()];
    let mut stack: Vec<u32> = roots.into_iter().map(|c| c.id).collect();
    let mut count = 0;
    while let Some(id) = stack.pop() {
        let slot = &mut seen[id as usize];
        if *slot {
            continue;
        }
        *slot = true;
        count += 1;
        match node_of(id) {
            Node::Zero | Node::One | Node::Var(_) => {}
            Node::Plus(a, b) | Node::Times(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    count
}

/// How to interpret each node shape; drives the iterative memoized fold.
trait NodeAlgebra {
    type Out: Clone;
    fn zero(&mut self) -> Self::Out;
    fn one(&mut self) -> Self::Out;
    fn var(&mut self, v: &Variable) -> Self::Out;
    fn plus(&mut self, a: &Self::Out, b: &Self::Out) -> Self::Out;
    fn times(&mut self, a: &Self::Out, b: &Self::Out) -> Self::Out;
}

/// Iterative (explicit-stack) bottom-up fold over the sub-DAG reachable from
/// `root`, memoized in `memo` by node id. Reusing the same `memo` across
/// roots is what amortizes shared nodes across all the tuples of a result.
fn fold_memo<A: NodeAlgebra>(
    root: Circuit,
    memo: &mut Vec<Option<A::Out>>,
    algebra: &mut A,
) -> A::Out {
    if memo.len() <= root.node_id() {
        memo.resize_with(root.node_id() + 1, || None);
    }
    let mut stack: Vec<u32> = vec![root.id];
    while let Some(&id) = stack.last() {
        if memo[id as usize].is_some() {
            stack.pop();
            continue;
        }
        let node = node_of(id);
        let value = match node {
            Node::Zero => Some(algebra.zero()),
            Node::One => Some(algebra.one()),
            Node::Var(ref v) => Some(algebra.var(v)),
            Node::Plus(a, b) | Node::Times(a, b) => {
                // Children always have smaller ids, so the memo is already
                // large enough for them.
                match (&memo[a as usize], &memo[b as usize]) {
                    (Some(x), Some(y)) => Some(if matches!(node, Node::Plus(_, _)) {
                        algebra.plus(x, y)
                    } else {
                        algebra.times(x, y)
                    }),
                    (x, y) => {
                        if x.is_none() {
                            stack.push(a);
                        }
                        if y.is_none() {
                            stack.push(b);
                        }
                        None
                    }
                }
            }
        };
        if let Some(value) = value {
            memo[id as usize] = Some(value);
            stack.pop();
        }
    }
    memo[root.node_id()]
        .clone()
        .expect("root was just computed")
}

struct LowerAlgebra;

impl NodeAlgebra for LowerAlgebra {
    type Out = ProvenancePolynomial;

    fn zero(&mut self) -> ProvenancePolynomial {
        Polynomial::zero()
    }
    fn one(&mut self) -> ProvenancePolynomial {
        Polynomial::one()
    }
    fn var(&mut self, v: &Variable) -> ProvenancePolynomial {
        Polynomial::var(v.clone())
    }
    fn plus(&mut self, a: &ProvenancePolynomial, b: &ProvenancePolynomial) -> ProvenancePolynomial {
        a.plus(b)
    }
    fn times(
        &mut self,
        a: &ProvenancePolynomial,
        b: &ProvenancePolynomial,
    ) -> ProvenancePolynomial {
        a.times(b)
    }
}

struct EvalAlgebra<'v, K> {
    valuation: &'v Valuation<K>,
}

impl<K: CommutativeSemiring> NodeAlgebra for EvalAlgebra<'_, K> {
    type Out = K;

    fn zero(&mut self) -> K {
        K::zero()
    }
    fn one(&mut self) -> K {
        K::one()
    }
    fn var(&mut self, v: &Variable) -> K {
        // Unassigned variables evaluate to 0, matching
        // `Polynomial::evaluate_with`.
        self.valuation.get(v).cloned().unwrap_or_else(K::zero)
    }
    fn plus(&mut self, a: &K, b: &K) -> K {
        a.plus(b)
    }
    fn times(&mut self, a: &K, b: &K) -> K {
        a.times(b)
    }
}

/// The memoized evaluation homomorphism `Eval_v : ℕ\[X\] → K` of Proposition
/// 4.2, over circuits: each arena node reachable from any evaluated root is
/// computed **once** for the lifetime of the evaluator, so specializing a
/// whole K-relation of circuit annotations costs one bottom-up pass over the
/// shared DAG instead of one expansion per tuple (Theorem 4.3 at circuit
/// speed).
///
/// The memo is keyed by arena node id and is invalidated — like every
/// handle — by [`reset`].
pub struct CircuitEval<'v, K> {
    algebra: EvalAlgebra<'v, K>,
    memo: Vec<Option<K>>,
}

impl<'v, K: CommutativeSemiring> CircuitEval<'v, K> {
    /// Creates the evaluator for one valuation.
    pub fn new(valuation: &'v Valuation<K>) -> Self {
        CircuitEval {
            algebra: EvalAlgebra { valuation },
            memo: Vec::new(),
        }
    }

    /// Evaluates one root, reusing every previously memoized node.
    pub fn eval(&mut self, circuit: Circuit) -> K {
        fold_memo(circuit, &mut self.memo, &mut self.algebra)
    }

    /// How many distinct nodes have been evaluated so far — the real work
    /// performed, regardless of how many roots shared them.
    pub fn evaluated_nodes(&self) -> usize {
        self.memo.iter().filter(|slot| slot.is_some()).count()
    }
}

impl Semiring for Circuit {
    fn zero() -> Self {
        Circuit::from_id(ZERO)
    }

    fn one() -> Self {
        Circuit::from_id(ONE)
    }

    /// O(1): folds the additive identity and interns a `Plus` node with
    /// id-sorted operands (so `a + b` and `b + a` share one node).
    fn plus(&self, other: &Self) -> Self {
        if self.id == ZERO {
            return *other;
        }
        if other.id == ZERO {
            return *self;
        }
        let (a, b) = if self.id <= other.id {
            (self.id, other.id)
        } else {
            (other.id, self.id)
        };
        Circuit::from_id(intern(Node::Plus(a, b)))
    }

    /// O(1): folds the multiplicative identities/annihilator and interns a
    /// `Times` node with id-sorted operands.
    fn times(&self, other: &Self) -> Self {
        if self.id == ZERO || other.id == ZERO {
            return Circuit::zero();
        }
        if self.id == ONE {
            return *other;
        }
        if other.id == ONE {
            return *self;
        }
        let (a, b) = if self.id <= other.id {
            (self.id, other.id)
        } else {
            (other.id, self.id)
        };
        Circuit::from_id(intern(Node::Times(a, b)))
    }

    /// Exact *and* O(1): the smart constructors fold `0` away, and ℕ\[X\] has
    /// no zero divisors, so only the interned `Zero` node denotes 0.
    fn is_zero(&self) -> bool {
        self.id == ZERO
    }

    /// Exact *and* O(1): `1` folds away, sums of two non-zero ℕ\[X\] elements
    /// exceed 1 coefficient-wise, and 1 is the only unit of ℕ\[X\], so only
    /// the interned `One` node denotes 1.
    fn is_one(&self) -> bool {
        self.id == ONE
    }
}

impl CommutativeSemiring for Circuit {}

impl PartialEq for Circuit {
    /// Semantic equality in ℕ\[X\]: identical nodes fast-path to `true`,
    /// otherwise both sides are lowered to the canonical expanded polynomial
    /// (exponential in the worst case — fine for tests and assertions, which
    /// is where circuit equality is used; the engines only call the O(1)
    /// [`Semiring::is_zero`]).
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id || self.to_polynomial() == other.to_polynomial()
    }
}

impl Eq for Circuit {}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Small circuits print as their polynomial; big ones would blow up
        // the expansion, so print a size summary instead.
        let nodes = self.node_count();
        if nodes <= 64 {
            write!(f, "{:?}", self.to_polynomial())
        } else {
            write!(f, "circuit#{}⟨{} nodes⟩", self.id, nodes)
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The same hash-consed circuit read **modulo absorption**: a handle whose
/// equality is taken in PosBool(X) (coefficients and exponents dropped, the
/// canonical surjection ℕ\[X\] → PosBool(X) of Section 4) instead of ℕ\[X\].
///
/// Because the surjection is a semiring homomorphism, all commutative-
/// semiring laws transfer, and `+` becomes **idempotent**: `a + a` interns a
/// new node but denotes the same PosBool element, so `BoolCircuit` lawfully
/// claims [`PlusIdempotent`]. This is the circuit form of boolean
/// provenance: identical sharing, c-table semantics.
#[derive(Clone, Copy)]
pub struct BoolCircuit(Circuit);

impl BoolCircuit {
    /// The circuit consisting of a single boolean variable.
    pub fn var(v: impl Into<Variable>) -> BoolCircuit {
        BoolCircuit(Circuit::var(v))
    }

    /// The underlying ℕ\[X\]-circuit handle (same arena node).
    pub fn circuit(&self) -> Circuit {
        self.0
    }

    /// Lowers to the canonical [`PosBool`] normal form (exponential in the
    /// worst case, like [`Circuit::to_polynomial`]).
    pub fn to_posbool(&self) -> PosBool {
        self.0.to_polynomial().to_posbool()
    }
}

impl From<Circuit> for BoolCircuit {
    fn from(circuit: Circuit) -> Self {
        BoolCircuit(circuit)
    }
}

impl Semiring for BoolCircuit {
    fn zero() -> Self {
        BoolCircuit(Circuit::zero())
    }
    fn one() -> Self {
        BoolCircuit(Circuit::one())
    }
    fn plus(&self, other: &Self) -> Self {
        BoolCircuit(self.0.plus(&other.0))
    }
    fn times(&self, other: &Self) -> Self {
        BoolCircuit(self.0.times(&other.0))
    }

    /// Exact and O(1): a non-zero ℕ\[X\] element maps to a non-false PosBool
    /// element (the surjection preserves having at least one monomial).
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
    // `is_one` keeps the default semantic check: in PosBool, `x + 1 = 1`,
    // so circuits other than the interned `One` node can denote true.
}

impl CommutativeSemiring for BoolCircuit {}
impl PlusIdempotent for BoolCircuit {}

impl PartialEq for BoolCircuit {
    fn eq(&self, other: &Self) -> bool {
        self.0.same_node(&other.0) || self.to_posbool() == other.to_posbool()
    }
}

impl Eq for BoolCircuit {}

impl fmt::Debug for BoolCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nodes = self.0.node_count();
        if nodes <= 64 {
            write!(f, "{:?}", self.to_posbool())
        } else {
            write!(f, "bool-circuit#{}⟨{} nodes⟩", self.0.id, nodes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::monomial::Monomial;
    use crate::natural::Natural;
    use crate::properties::check_semiring_laws;
    use crate::tropical::Tropical;

    fn x(name: &str) -> Circuit {
        Circuit::var(name)
    }

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn constants_and_identities_fold_structurally() {
        let a = x("a");
        assert!(Circuit::zero().is_zero());
        assert!(Circuit::one().is_one());
        assert!(a.plus(&Circuit::zero()).same_node(&a));
        assert!(Circuit::zero().plus(&a).same_node(&a));
        assert!(a.times(&Circuit::one()).same_node(&a));
        assert!(a.times(&Circuit::zero()).is_zero());
        assert!(!a.is_zero() && !a.is_one());
    }

    #[test]
    fn hash_consing_shares_structurally_equal_nodes() {
        let before = arena_node_count();
        let e1 = x("p").times(&x("r")).plus(&x("s"));
        let grown = arena_node_count();
        let e2 = x("p").times(&x("r")).plus(&x("s"));
        assert!(e1.same_node(&e2));
        assert_eq!(arena_node_count(), grown, "rebuilding interned nothing new");
        assert!(grown > before);
        // Commutativity is shared structurally via operand sorting.
        assert!(x("p").plus(&x("r")).same_node(&x("r").plus(&x("p"))));
        assert!(x("p").times(&x("r")).same_node(&x("r").times(&x("p"))));
    }

    #[test]
    fn lowering_matches_polynomial_arithmetic() {
        // Figure 5(c) for (d,e): r·r + r·r + r·s = 2r² + rs.
        let de = x("r")
            .times(&x("r"))
            .plus(&x("r").times(&x("r")))
            .plus(&x("r").times(&x("s")));
        let expected = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        assert_eq!(de.to_polynomial(), expected);
    }

    #[test]
    fn semantic_equality_crosses_association() {
        let l = x("a").plus(&x("b")).plus(&x("c"));
        let r = x("a").plus(&x("b").plus(&x("c")));
        assert!(!l.same_node(&r));
        assert_eq!(l, r);
        assert_ne!(l, x("a").plus(&x("b")));
    }

    #[test]
    fn eval_agrees_with_polynomial_eval() {
        let e = x("p")
            .times(&x("p"))
            .repeat(2)
            .plus(&x("r").times(&x("s")))
            .plus(&Circuit::constant(3));
        let v = Valuation::from_pairs([("p", nat(2)), ("r", nat(5)), ("s", nat(1))]);
        assert_eq!(e.eval(&v), e.to_polynomial().eval(&v));
        let vt = Valuation::from_pairs([
            ("p", Tropical::cost(2)),
            ("r", Tropical::cost(5)),
            ("s", Tropical::cost(1)),
        ]);
        assert_eq!(e.eval(&vt), e.to_polynomial().eval(&vt));
        // Unassigned variables evaluate to zero, like the polynomial path.
        let partial = Valuation::from_pairs([("p", nat(2))]);
        assert_eq!(x("q").eval(&partial), Natural::zero());
    }

    #[test]
    fn iterated_squaring_stays_linear_in_circuit_form() {
        // (a + b)^(2^k) has 2^k + 1 expanded terms but O(k) circuit nodes;
        // memoized evaluation recovers the closed form 2^(2^k) at a = b = 1.
        let mut square = x("a").plus(&x("b"));
        const K: u32 = 5;
        for _ in 0..K {
            square = square.times(&square);
        }
        assert!(square.node_count() <= 4 + K as usize);
        let ones = Valuation::from_pairs([("a", nat(1)), ("b", nat(1))]);
        assert_eq!(square.eval(&ones), nat(2u64.pow(2u32.pow(K))));
    }

    #[test]
    fn product_of_sums_is_exponential_expanded_but_linear_shared() {
        // Π (xᵢ + yᵢ) for 40 factors: 2^40 expanded monomials — far beyond
        // materializing — but ~4 nodes per factor in circuit form.
        let mut product = Circuit::one();
        for i in 0..40 {
            product
                .times_assign(&Circuit::var(format!("x{i}")).plus(&Circuit::var(format!("y{i}"))));
        }
        assert!(product.node_count() <= 1 + 4 * 40);
        let all_ones = Valuation::from_pairs(
            (0..40).flat_map(|i| [(format!("x{i}"), nat(1)), (format!("y{i}"), nat(1))]),
        );
        assert_eq!(product.eval(&all_ones), nat(1u64 << 40));
    }

    #[test]
    fn circuit_eval_memo_is_shared_across_roots() {
        let shared = x("a").plus(&x("b")).times(&x("c"));
        let r1 = shared.times(&x("d"));
        let r2 = shared.times(&x("e"));
        let v = Valuation::from_pairs([
            ("a", nat(1)),
            ("b", nat(2)),
            ("c", nat(3)),
            ("d", nat(4)),
            ("e", nat(5)),
        ]);
        let mut eval = CircuitEval::new(&v);
        assert_eq!(eval.eval(r1), nat(36));
        let after_first = eval.evaluated_nodes();
        assert_eq!(eval.eval(r2), nat(45));
        // The second root only added its two fresh nodes (e, shared·e).
        assert_eq!(eval.evaluated_nodes(), after_first + 2);
    }

    #[test]
    fn from_polynomial_round_trips() {
        let p = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
            (Monomial::unit(), nat(7)),
        ]);
        assert_eq!(Circuit::from_polynomial(&p).to_polynomial(), p);
        assert!(Circuit::from_polynomial(&Polynomial::zero()).is_zero());
        assert!(Circuit::from_polynomial(&Polynomial::one()).is_one());
    }

    #[test]
    fn reference_harness_accepts_circuit_samples() {
        let samples = vec![
            Circuit::zero(),
            Circuit::one(),
            x("p"),
            x("r"),
            x("p").plus(&x("r")),
            x("p").times(&x("r")).plus(&Circuit::constant(2)),
        ];
        check_semiring_laws(&samples).expect("circuit semiring laws");
    }

    #[test]
    fn reset_truncates_the_arena() {
        let before = arena_node_count();
        let _ = x("tmp1").times(&x("tmp2"));
        assert!(arena_node_count() > before);
        reset();
        assert_eq!(arena_node_count(), 2);
        // The arena is usable again immediately.
        assert_eq!(
            x("tmp1").eval(&Valuation::from_pairs([("tmp1", nat(9))])),
            nat(9)
        );
    }

    #[test]
    fn shared_node_count_over_several_roots() {
        reset();
        let a = x("a");
        let b = x("b");
        let ab = a.times(&b);
        // Roots {ab, a} reach {0?, no — just a, b, ab}: 3 nodes.
        assert_eq!(shared_node_count([ab, a]), 3);
        assert_eq!(shared_node_count([Circuit::zero()]), 1);
        assert_eq!(shared_node_count(Vec::new()), 0);
    }

    #[test]
    fn bool_circuit_is_plus_idempotent_and_absorptive() {
        let p = BoolCircuit::var("p");
        let r = BoolCircuit::var("r");
        assert_eq!(p.plus(&p), p);
        assert_eq!(p.times(&p), p);
        // Absorption: p + p·r = p in PosBool.
        assert_eq!(p.plus(&p.times(&r)), p);
        assert_ne!(p.plus(&r), p);
        // ℕ[X]-equality is finer: the same nodes are *not* equal as Circuit.
        assert_ne!(p.circuit().plus(&p.circuit()), p.circuit());
    }

    #[test]
    fn bool_circuit_eval_through_posbool() {
        let e = BoolCircuit::var("p")
            .times(&BoolCircuit::var("r"))
            .plus(&BoolCircuit::var("p"));
        assert_eq!(e.to_posbool(), PosBool::var("p"));
        let v = Valuation::from_pairs([("p", Bool::from(true)), ("r", Bool::from(false))]);
        assert_eq!(e.circuit().eval(&v), Bool::from(true));
    }
}

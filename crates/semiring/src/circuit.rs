//! Hash-consed **provenance circuits**: ℕ\[X\] represented as a shared DAG.
//!
//! The expanded [`Polynomial`] representation of ℕ\[X\] is canonical but loses
//! all sharing: a join output annotation `(x₁+y₁)·(x₂+y₂)·⋯·(xₙ+yₙ)`
//! expands into `2ⁿ` monomials, and specializing every output tuple
//! re-evaluates common subexpressions from scratch. This module keeps the
//! *same* semiring elements in **circuit form**: interned DAG nodes
//! (`0 | 1 | x | a + b | a · b`) behind a thread-local arena with structural
//! hash-consing, handled through [`Circuit`] — a `Copy` node id that
//! implements [`Semiring`]/[`CommutativeSemiring`] and therefore drops into
//! every generic K-relation, planned-engine, and datalog entry point
//! unchanged.
//!
//! The theory is exactly that of Section 4 of the paper: ℕ\[X\] is the free
//! commutative semiring on X (Proposition 4.2), so *any* syntax tree over
//! `{0, 1, +, ·} ∪ X` denotes a unique element of ℕ\[X\], and every valuation
//! `v : X → K` extends to a unique homomorphism `Eval_v : ℕ\[X\] → K`. The
//! factorization theorem (Theorem 4.3) — "compute the query once over ℕ\[X\],
//! specialize everywhere" — does not care *how* the ℕ\[X\] element is
//! represented. Circuits make the theorem cheap in practice:
//!
//! * `+`/`·` are O(1) hash-consing lookups instead of monomial-map merges;
//! * [`CircuitEval`] memoizes `Eval_v` bottom-up over the shared DAG, so a
//!   node reused by many output tuples is evaluated **once per valuation**;
//! * [`Circuit::to_polynomial`] is the memoized lowering back to the
//!   expanded canonical form (used for equality, display, and as the
//!   differential-testing reference).
//!
//! Equality of handles is **semantic** (lowering both sides to the canonical
//! polynomial), so the commutative-semiring laws hold on the nose; the cheap
//! structural checks are reserved for [`Semiring::is_zero`] /
//! [`Semiring::is_one`], which the smart constructors keep exact (`0` and
//! `1` fold away, and ℕ\[X\] has no zero divisors and no non-trivial units).
//!
//! # Arena lifecycle
//!
//! The arena is thread-local and append-only; [`reset`] truncates it back to
//! the constants in O(1) drops per node (no per-handle bookkeeping — handles
//! are `Copy` and never own anything), retaining map capacity for reuse
//! across queries. Resetting bumps the arena **generation**, and every
//! handle carries the generation it was interned under: using a handle after
//! a reset panics with a "stale circuit handle" message instead of silently
//! reading whatever node the new generation put at the same id. Prefer the
//! scoped [`CircuitSession`] guard over calling [`reset`] by hand — it
//! resets on entry and on drop, and [`reset`] refuses to run while a session
//! is active, so a library deep in the call stack can't pull the arena out
//! from under you.
//!
//! # Crossing threads
//!
//! Handles are deliberately `!Send`: a node id is meaningless in another
//! thread's arena. What *can* cross threads is an exported batch:
//! [`Semiring::to_portable`] re-encodes the sub-DAG reachable from a batch
//! of handles into an arena-independent node list (children referenced by
//! position), and [`Semiring::from_portable`] re-interns that list into the
//! receiving thread's own arena — hash-consing deduplicates against whatever
//! that arena already holds, and the smart constructors restore the
//! id-sorted-operand invariant under the new numbering. This is how the
//! morsel-driven parallel executor of `provsem-core` runs
//! `tag_database_circuit → query → specialize_circuit` across worker
//! threads: each worker builds nodes in its *own* arena and the coordinator
//! merges the results back by id remapping, in deterministic partition
//! order.

use crate::fxhash::FxHashMap;
use crate::polynomial::{Polynomial, ProvenancePolynomial};
use crate::posbool::PosBool;
use crate::traits::{CommutativeSemiring, PlusIdempotent, Portable, Semiring};
use crate::variable::{Valuation, Variable};
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;

const ZERO: u32 = 0;
const ONE: u32 = 1;

/// The generation stamp of the constant handles `0` and `1`, which survive
/// every reset and are therefore valid in all generations.
const GEN_CONST: u32 = u32::MAX;

/// One interned circuit node. `Plus`/`Times` children are arena indices that
/// are always smaller than the node's own index (children are interned
/// first), so the arena order is a topological order of every DAG in it.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Node {
    Zero,
    One,
    Var(Variable),
    Plus(u32, u32),
    Times(u32, u32),
}

/// The thread-local hash-consing arena.
struct Arena {
    nodes: Vec<Node>,
    interned: FxHashMap<Node, u32>,
    /// Bumped by every reset; handles interned under an older generation are
    /// stale and refuse to be used.
    generation: u32,
    /// Number of active [`CircuitSession`] guards (0 or 1 — sessions don't
    /// nest); a bare [`reset`] while a session is active panics.
    sessions: u32,
}

impl Arena {
    fn new() -> Arena {
        let mut arena = Arena {
            nodes: Vec::new(),
            interned: FxHashMap::default(),
            generation: 0,
            sessions: 0,
        };
        arena.reset();
        arena
    }

    /// Truncates back to the two constants, keeping allocated capacity, and
    /// opens the next generation.
    fn reset(&mut self) {
        self.nodes.clear();
        self.interned.clear();
        self.nodes.push(Node::Zero);
        self.nodes.push(Node::One);
        self.interned.insert(Node::Zero, ZERO);
        self.interned.insert(Node::One, ONE);
        self.generation = self
            .generation
            .checked_add(1)
            .expect("circuit arena generation counter overflowed");
    }

    fn intern(&mut self, node: Node) -> u32 {
        if let Some(&id) = self.interned.get(&node) {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("circuit arena exceeded u32 node ids");
        self.nodes.push(node.clone());
        self.interned.insert(node, id);
        id
    }

    /// Panics on a handle from an earlier generation — the loud failure mode
    /// that replaces silently reading a reset arena.
    fn check(&self, handle: &Circuit) {
        assert!(
            handle.id <= ONE || handle.gen == self.generation,
            "stale circuit handle: the arena was reset (generation {} is gone, current is {}); \
             scope handle lifetimes with CircuitSession",
            handle.gen,
            self.generation
        );
    }

    fn handle(&self, id: u32) -> Circuit {
        Circuit {
            id,
            gen: if id <= ONE {
                GEN_CONST
            } else {
                self.generation
            },
            _not_send: PhantomData,
        }
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::new());
}

/// Clones one node out of the arena. Borrowing is scoped to the lookup so
/// that semiring operations of the *output* domain (which may themselves be
/// circuits, e.g. circuit-to-circuit substitution) can re-enter the arena.
/// Takes a raw id (already validated via a root handle's generation check):
/// children of a live node are always live.
fn node_of(id: u32) -> Node {
    ARENA.with(|arena| arena.borrow().nodes[id as usize].clone())
}

/// Generation-checks a root handle against the current arena.
fn check_handle(handle: &Circuit) {
    ARENA.with(|arena| arena.borrow().check(handle));
}

fn intern(node: Node) -> Circuit {
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        let id = arena.intern(node);
        arena.handle(id)
    })
}

/// Generation-checks both operands and interns their combination in one
/// arena borrow (the hot path of [`Semiring::plus`]/[`Semiring::times`]).
fn intern_pair(a: &Circuit, b: &Circuit, make: impl FnOnce(u32, u32) -> Node) -> Circuit {
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        arena.check(a);
        arena.check(b);
        let (x, y) = if a.id <= b.id {
            (a.id, b.id)
        } else {
            (b.id, a.id)
        };
        let id = arena.intern(make(x, y));
        arena.handle(id)
    })
}

/// Number of nodes currently interned in this thread's arena (including the
/// two constants). A direct measure of total provenance size with sharing.
pub fn arena_node_count() -> usize {
    ARENA.with(|arena| arena.borrow().nodes.len())
}

/// Bulk-resets this thread's circuit arena back to the constants `0` and
/// `1`, retaining allocated capacity for the next query.
///
/// Every outstanding [`Circuit`] handle and [`CircuitEval`] memo of this
/// thread is invalidated; the reset opens a new arena *generation*, so using
/// a stale handle afterwards **panics** instead of silently reading the new
/// generation's nodes. Call only between independent provenance
/// computations — or, better, scope the computation in a [`CircuitSession`],
/// which resets on entry and exit and makes this function refuse to run
/// underneath it.
///
/// # Panics
/// Panics if a [`CircuitSession`] is active on this thread.
pub fn reset() {
    ARENA.with(|arena| {
        let mut arena = arena.borrow_mut();
        assert!(
            arena.sessions == 0,
            "circuit::reset() called while a CircuitSession is active; drop the session instead"
        );
        arena.reset();
    });
}

/// A scoped guard for the circuit-arena lifecycle: construction resets this
/// thread's arena (opening a fresh generation), and dropping the guard
/// resets it again, reclaiming every node the session interned.
///
/// The guard closes the classic footgun of the bare [`reset`] API — some
/// library code calling `reset()` while the caller still holds handles,
/// which before the generation stamps would *silently* re-read the new
/// arena. While a session is active, [`reset`] panics instead of running;
/// handles that escape the session panic on first use (their generation is
/// gone). Sessions are per-thread and do not nest.
///
/// ```
/// use provsem_semiring::circuit::{self, CircuitSession};
/// use provsem_semiring::{Circuit, Semiring};
///
/// let leaked = CircuitSession::run(|| {
///     let p = Circuit::var("p");
///     assert!(!p.is_zero());
///     p.node_id() // plain data may leave the session; handles should not
/// });
/// assert!(leaked >= 2);
/// assert_eq!(circuit::arena_node_count(), 2); // session reclaimed its nodes
/// ```
pub struct CircuitSession {
    /// Sessions guard a thread-local arena, so the guard itself must not
    /// move to another thread.
    _not_send: PhantomData<*const ()>,
}

impl CircuitSession {
    /// Resets this thread's arena and opens a session scoped to the returned
    /// guard.
    ///
    /// # Panics
    /// Panics if a session is already active on this thread.
    pub fn begin() -> CircuitSession {
        ARENA.with(|arena| {
            let mut arena = arena.borrow_mut();
            assert!(
                arena.sessions == 0,
                "CircuitSession::begin() while another session is active; sessions do not nest"
            );
            arena.reset();
            arena.sessions = 1;
        });
        CircuitSession {
            _not_send: PhantomData,
        }
    }

    /// Runs `f` inside a fresh session; the arena is reset before and after.
    /// Returning a [`Circuit`] handle (or anything holding one) from `f` is
    /// a bug — the handle's generation dies with the session, so any later
    /// use panics.
    pub fn run<R>(f: impl FnOnce() -> R) -> R {
        let _session = CircuitSession::begin();
        f()
    }
}

impl Drop for CircuitSession {
    fn drop(&mut self) {
        ARENA.with(|arena| {
            let mut arena = arena.borrow_mut();
            arena.sessions = 0;
            arena.reset();
        });
    }
}

/// A handle to a hash-consed provenance circuit: an element of ℕ\[X\] in
/// shared-DAG form.
///
/// `Circuit` is a `Copy` arena node id, so cloning annotations — which the
/// relational operators do per row — is free, and structurally identical
/// subcircuits are built exactly once. See the [module docs](self) for the
/// arena lifecycle and the equality semantics.
#[derive(Clone, Copy)]
pub struct Circuit {
    id: u32,
    /// The arena generation this handle was interned under; checked against
    /// the arena on every use so a handle that outlives a [`reset`] fails
    /// loudly instead of aliasing a node of the next query. The constants
    /// `0`/`1` carry [`GEN_CONST`] and are valid in every generation.
    gen: u32,
    /// Node ids are meaningless across threads (each thread has its own
    /// arena), so the handle opts out of `Send`/`Sync`. Batches of handles
    /// cross threads through [`Semiring::to_portable`] instead.
    _not_send: PhantomData<*const ()>,
}

impl Circuit {
    /// The circuit consisting of a single variable (a tuple id).
    pub fn var(v: impl Into<Variable>) -> Circuit {
        intern(Node::Var(v.into()))
    }

    /// The constant circuit `n` (the canonical embedding ℕ → ℕ\[X\]), built
    /// with double-and-add so it has O(log n) nodes.
    pub fn constant(n: u64) -> Circuit {
        Circuit::one().repeat(n)
    }

    /// Builds a circuit denoting the given expanded polynomial (sum of
    /// coefficient-weighted monomial products). Inverse of
    /// [`Circuit::to_polynomial`] up to representation.
    pub fn from_polynomial(p: &ProvenancePolynomial) -> Circuit {
        let mut acc = Circuit::zero();
        for (monomial, coeff) in p.terms() {
            let mut term = Circuit::constant(coeff.value());
            for (var, exp) in monomial.powers() {
                term.times_assign(&Circuit::var(var.clone()).pow(exp));
            }
            acc.plus_assign(&term);
        }
        acc
    }

    /// The raw arena node id. Stable for the lifetime of the current arena
    /// generation; structural equality of ids implies semantic equality.
    pub fn node_id(&self) -> usize {
        self.id as usize
    }

    /// Are the two handles the *same interned node* (of the same arena
    /// generation)? A cheap, sound (but incomplete) equality: structurally
    /// identical circuits are always the same node, semantically equal ones
    /// need not be.
    pub fn same_node(&self, other: &Circuit) -> bool {
        self.id == other.id && (self.id <= ONE || self.gen == other.gen)
    }

    /// Number of distinct nodes reachable from this handle — the size of the
    /// circuit *with* sharing. Compare with
    /// [`Polynomial::num_terms`] of the lowering to see the blowup avoided.
    pub fn node_count(&self) -> usize {
        shared_node_count([*self])
    }

    /// Lowers the circuit to the expanded canonical [`ProvenancePolynomial`],
    /// memoized over the DAG (each shared node is expanded once). This is
    /// the compatibility bridge to the polynomial API — and inherently pays
    /// the exponential expansion the circuit representation avoids, so use
    /// it for tests and display, not on hot paths.
    pub fn to_polynomial(&self) -> ProvenancePolynomial {
        let mut memo: Vec<Option<ProvenancePolynomial>> = Vec::new();
        fold_memo(*self, &mut memo, &mut LowerAlgebra)
    }

    /// One-off memoized evaluation `Eval_v` into any commutative semiring
    /// (Proposition 4.2). To amortize the memo across *many* roots — the
    /// whole point of sharing — use one [`CircuitEval`] for all of them.
    pub fn eval<K: CommutativeSemiring>(&self, valuation: &Valuation<K>) -> K {
        CircuitEval::new(valuation).eval(*self)
    }
}

/// Total number of distinct nodes reachable from any of the given roots —
/// the size of a whole provenance-annotated result with sharing.
pub fn shared_node_count(roots: impl IntoIterator<Item = Circuit>) -> usize {
    let mut seen: Vec<bool> = vec![false; arena_node_count()];
    let mut stack: Vec<u32> = roots
        .into_iter()
        .map(|c| {
            check_handle(&c);
            c.id
        })
        .collect();
    let mut count = 0;
    while let Some(id) = stack.pop() {
        let slot = &mut seen[id as usize];
        if *slot {
            continue;
        }
        *slot = true;
        count += 1;
        match node_of(id) {
            Node::Zero | Node::One | Node::Var(_) => {}
            Node::Plus(a, b) | Node::Times(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    count
}

/// How to interpret each node shape; drives the iterative memoized fold.
trait NodeAlgebra {
    type Out: Clone;
    fn zero(&mut self) -> Self::Out;
    fn one(&mut self) -> Self::Out;
    fn var(&mut self, v: &Variable) -> Self::Out;
    fn plus(&mut self, a: &Self::Out, b: &Self::Out) -> Self::Out;
    fn times(&mut self, a: &Self::Out, b: &Self::Out) -> Self::Out;
}

/// Iterative (explicit-stack) bottom-up fold over the sub-DAG reachable from
/// `root`, memoized in `memo` by node id. Reusing the same `memo` across
/// roots is what amortizes shared nodes across all the tuples of a result.
fn fold_memo<A: NodeAlgebra>(
    root: Circuit,
    memo: &mut Vec<Option<A::Out>>,
    algebra: &mut A,
) -> A::Out {
    check_handle(&root);
    if memo.len() <= root.node_id() {
        memo.resize_with(root.node_id() + 1, || None);
    }
    let mut stack: Vec<u32> = vec![root.id];
    while let Some(&id) = stack.last() {
        if memo[id as usize].is_some() {
            stack.pop();
            continue;
        }
        let node = node_of(id);
        let value = match node {
            Node::Zero => Some(algebra.zero()),
            Node::One => Some(algebra.one()),
            Node::Var(ref v) => Some(algebra.var(v)),
            Node::Plus(a, b) | Node::Times(a, b) => {
                // Children always have smaller ids, so the memo is already
                // large enough for them.
                match (&memo[a as usize], &memo[b as usize]) {
                    (Some(x), Some(y)) => Some(if matches!(node, Node::Plus(_, _)) {
                        algebra.plus(x, y)
                    } else {
                        algebra.times(x, y)
                    }),
                    (x, y) => {
                        if x.is_none() {
                            stack.push(a);
                        }
                        if y.is_none() {
                            stack.push(b);
                        }
                        None
                    }
                }
            }
        };
        if let Some(value) = value {
            memo[id as usize] = Some(value);
            stack.pop();
        }
    }
    memo[root.node_id()]
        .clone()
        .expect("root was just computed")
}

struct LowerAlgebra;

impl NodeAlgebra for LowerAlgebra {
    type Out = ProvenancePolynomial;

    fn zero(&mut self) -> ProvenancePolynomial {
        Polynomial::zero()
    }
    fn one(&mut self) -> ProvenancePolynomial {
        Polynomial::one()
    }
    fn var(&mut self, v: &Variable) -> ProvenancePolynomial {
        Polynomial::var(v.clone())
    }
    fn plus(&mut self, a: &ProvenancePolynomial, b: &ProvenancePolynomial) -> ProvenancePolynomial {
        a.plus(b)
    }
    fn times(
        &mut self,
        a: &ProvenancePolynomial,
        b: &ProvenancePolynomial,
    ) -> ProvenancePolynomial {
        a.times(b)
    }
}

struct EvalAlgebra<'v, K> {
    valuation: &'v Valuation<K>,
}

impl<K: CommutativeSemiring> NodeAlgebra for EvalAlgebra<'_, K> {
    type Out = K;

    fn zero(&mut self) -> K {
        K::zero()
    }
    fn one(&mut self) -> K {
        K::one()
    }
    fn var(&mut self, v: &Variable) -> K {
        // Unassigned variables evaluate to 0, matching
        // `Polynomial::evaluate_with`.
        self.valuation.get(v).cloned().unwrap_or_else(K::zero)
    }
    fn plus(&mut self, a: &K, b: &K) -> K {
        a.plus(b)
    }
    fn times(&mut self, a: &K, b: &K) -> K {
        a.times(b)
    }
}

/// The memoized evaluation homomorphism `Eval_v : ℕ\[X\] → K` of Proposition
/// 4.2, over circuits: each arena node reachable from any evaluated root is
/// computed **once** for the lifetime of the evaluator, so specializing a
/// whole K-relation of circuit annotations costs one bottom-up pass over the
/// shared DAG instead of one expansion per tuple (Theorem 4.3 at circuit
/// speed).
///
/// The memo is keyed by arena node id and is invalidated — like every
/// handle — by [`reset`].
pub struct CircuitEval<'v, K> {
    algebra: EvalAlgebra<'v, K>,
    memo: Vec<Option<K>>,
    /// The arena generation the memo belongs to (set on first eval); an
    /// evaluator reused across a [`reset`] panics instead of serving memo
    /// entries for nodes that no longer exist.
    generation: Option<u32>,
    /// The memo is keyed by node ids of *this thread's* arena, and the
    /// generation counter cannot tell two threads' arenas apart (every
    /// fresh thread starts at generation 1) — so the evaluator, like the
    /// handles it caches, must not cross threads. Parallel specialization
    /// builds one evaluator per worker instead.
    _not_send: PhantomData<*const ()>,
}

impl<'v, K: CommutativeSemiring> CircuitEval<'v, K> {
    /// Creates the evaluator for one valuation.
    pub fn new(valuation: &'v Valuation<K>) -> Self {
        CircuitEval {
            algebra: EvalAlgebra { valuation },
            memo: Vec::new(),
            generation: None,
            _not_send: PhantomData,
        }
    }

    /// Evaluates one root, reusing every previously memoized node.
    pub fn eval(&mut self, circuit: Circuit) -> K {
        let current = ARENA.with(|arena| arena.borrow().generation);
        match self.generation {
            None => self.generation = Some(current),
            Some(generation) => assert!(
                generation == current,
                "CircuitEval memo outlived a circuit::reset(); build a fresh evaluator"
            ),
        }
        fold_memo(circuit, &mut self.memo, &mut self.algebra)
    }

    /// How many distinct nodes have been evaluated so far — the real work
    /// performed, regardless of how many roots shared them.
    pub fn evaluated_nodes(&self) -> usize {
        self.memo.iter().filter(|slot| slot.is_some()).count()
    }
}

impl Semiring for Circuit {
    fn zero() -> Self {
        Circuit {
            id: ZERO,
            gen: GEN_CONST,
            _not_send: PhantomData,
        }
    }

    fn one() -> Self {
        Circuit {
            id: ONE,
            gen: GEN_CONST,
            _not_send: PhantomData,
        }
    }

    /// O(1): folds the additive identity and interns a `Plus` node with
    /// id-sorted operands (so `a + b` and `b + a` share one node).
    fn plus(&self, other: &Self) -> Self {
        if self.id == ZERO {
            return *other;
        }
        if other.id == ZERO {
            return *self;
        }
        intern_pair(self, other, Node::Plus)
    }

    /// O(1): folds the multiplicative identities/annihilator and interns a
    /// `Times` node with id-sorted operands.
    fn times(&self, other: &Self) -> Self {
        if self.id == ZERO || other.id == ZERO {
            return Circuit::zero();
        }
        if self.id == ONE {
            return *other;
        }
        if other.id == ONE {
            return *self;
        }
        intern_pair(self, other, Node::Times)
    }

    /// Exact *and* O(1): the smart constructors fold `0` away, and ℕ\[X\] has
    /// no zero divisors, so only the interned `Zero` node denotes 0.
    fn is_zero(&self) -> bool {
        self.id == ZERO
    }

    /// Exact *and* O(1): `1` folds away, sums of two non-zero ℕ\[X\] elements
    /// exceed 1 coefficient-wise, and 1 is the only unit of ℕ\[X\], so only
    /// the interned `One` node denotes 1.
    fn is_one(&self) -> bool {
        self.id == ONE
    }

    /// Circuits cross threads by re-encoding, not by copying ids: the
    /// portable form is the reachable sub-DAG as a position-indexed node
    /// list, and importing re-interns it into the receiving thread's
    /// arena. See the module docs, "Crossing threads".
    fn is_portable() -> bool {
        true
    }

    fn to_portable(batch: Vec<Self>) -> Portable {
        Portable::new(export_circuits(&batch))
    }

    fn from_portable(token: Portable) -> Vec<Self> {
        import_circuits(token.unwrap::<PortableCircuits>())
    }
}

/// The arena-independent encoding of a batch of circuits: the non-constant
/// nodes reachable from the batch, renumbered densely in topological order.
/// Position `k` of `nodes` has portable id `k + 2` (ids `0`/`1` are the
/// constants of *every* arena); `Plus`/`Times` children are portable ids,
/// always smaller than the node's own — so importing is a single in-order
/// pass.
struct PortableCircuits {
    nodes: Vec<PortableNode>,
    /// Portable id of each circuit in the exported batch, in batch order.
    roots: Vec<u32>,
}

enum PortableNode {
    Var(Variable),
    Plus(u32, u32),
    Times(u32, u32),
}

/// Encodes the sub-DAG reachable from `batch` (in this thread's arena) into
/// portable form. Deterministic: nodes are emitted in ascending arena id
/// order, which is a topological order because children are interned first.
fn export_circuits(batch: &[Circuit]) -> PortableCircuits {
    ARENA.with(|arena| {
        let arena = arena.borrow();
        let mut reachable = vec![false; arena.nodes.len()];
        let mut stack: Vec<u32> = Vec::new();
        for circuit in batch {
            arena.check(circuit);
            stack.push(circuit.id);
        }
        while let Some(id) = stack.pop() {
            let slot = &mut reachable[id as usize];
            if *slot {
                continue;
            }
            *slot = true;
            if let Node::Plus(a, b) | Node::Times(a, b) = &arena.nodes[id as usize] {
                stack.push(*a);
                stack.push(*b);
            }
        }
        let mut remap = vec![0u32; arena.nodes.len()];
        remap[ONE as usize] = ONE;
        let mut nodes = Vec::new();
        for id in 2..arena.nodes.len() {
            if !reachable[id] {
                continue;
            }
            remap[id] = u32::try_from(nodes.len() + 2).expect("portable circuit id overflow");
            nodes.push(match &arena.nodes[id] {
                Node::Var(v) => PortableNode::Var(v.clone()),
                Node::Plus(a, b) => PortableNode::Plus(remap[*a as usize], remap[*b as usize]),
                Node::Times(a, b) => PortableNode::Times(remap[*a as usize], remap[*b as usize]),
                Node::Zero | Node::One => unreachable!("constants have the reserved ids 0 and 1"),
            });
        }
        PortableCircuits {
            nodes,
            roots: batch.iter().map(|c| remap[c.id as usize]).collect(),
        }
    })
}

/// Re-interns a portable batch into the *current* thread's arena. Building
/// through the smart constructors restores the id-sorted-operand invariant
/// under this arena's numbering and lets hash-consing deduplicate against
/// nodes the arena already holds, so repeated imports never balloon it.
fn import_circuits(portable: PortableCircuits) -> Vec<Circuit> {
    let mut handles: Vec<Circuit> = Vec::with_capacity(portable.nodes.len() + 2);
    handles.push(Circuit::zero());
    handles.push(Circuit::one());
    for node in portable.nodes {
        let handle = match node {
            PortableNode::Var(v) => Circuit::var(v),
            PortableNode::Plus(a, b) => handles[a as usize].plus(&handles[b as usize]),
            PortableNode::Times(a, b) => handles[a as usize].times(&handles[b as usize]),
        };
        handles.push(handle);
    }
    portable
        .roots
        .into_iter()
        .map(|r| handles[r as usize])
        .collect()
}

impl CommutativeSemiring for Circuit {}

impl PartialEq for Circuit {
    /// Semantic equality in ℕ\[X\]: identical nodes fast-path to `true`,
    /// otherwise both sides are lowered to the canonical expanded polynomial
    /// (exponential in the worst case — fine for tests and assertions, which
    /// is where circuit equality is used; the engines only call the O(1)
    /// [`Semiring::is_zero`]).
    fn eq(&self, other: &Self) -> bool {
        self.same_node(other) || self.to_polynomial() == other.to_polynomial()
    }
}

impl Eq for Circuit {}

impl fmt::Debug for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Small circuits print as their polynomial; big ones would blow up
        // the expansion, so print a size summary instead.
        let nodes = self.node_count();
        if nodes <= 64 {
            write!(f, "{:?}", self.to_polynomial())
        } else {
            write!(f, "circuit#{}⟨{} nodes⟩", self.id, nodes)
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The same hash-consed circuit read **modulo absorption**: a handle whose
/// equality is taken in PosBool(X) (coefficients and exponents dropped, the
/// canonical surjection ℕ\[X\] → PosBool(X) of Section 4) instead of ℕ\[X\].
///
/// Because the surjection is a semiring homomorphism, all commutative-
/// semiring laws transfer, and `+` becomes **idempotent**: `a + a` interns a
/// new node but denotes the same PosBool element, so `BoolCircuit` lawfully
/// claims [`PlusIdempotent`]. This is the circuit form of boolean
/// provenance: identical sharing, c-table semantics.
#[derive(Clone, Copy)]
pub struct BoolCircuit(Circuit);

impl BoolCircuit {
    /// The circuit consisting of a single boolean variable.
    pub fn var(v: impl Into<Variable>) -> BoolCircuit {
        BoolCircuit(Circuit::var(v))
    }

    /// The underlying ℕ\[X\]-circuit handle (same arena node).
    pub fn circuit(&self) -> Circuit {
        self.0
    }

    /// Lowers to the canonical [`PosBool`] normal form (exponential in the
    /// worst case, like [`Circuit::to_polynomial`]).
    pub fn to_posbool(&self) -> PosBool {
        self.0.to_polynomial().to_posbool()
    }
}

impl From<Circuit> for BoolCircuit {
    fn from(circuit: Circuit) -> Self {
        BoolCircuit(circuit)
    }
}

impl Semiring for BoolCircuit {
    fn zero() -> Self {
        BoolCircuit(Circuit::zero())
    }
    fn one() -> Self {
        BoolCircuit(Circuit::one())
    }
    fn plus(&self, other: &Self) -> Self {
        BoolCircuit(self.0.plus(&other.0))
    }
    fn times(&self, other: &Self) -> Self {
        BoolCircuit(self.0.times(&other.0))
    }

    /// Exact and O(1): a non-zero ℕ\[X\] element maps to a non-false PosBool
    /// element (the surjection preserves having at least one monomial).
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
    // `is_one` keeps the default semantic check: in PosBool, `x + 1 = 1`,
    // so circuits other than the interned `One` node can denote true.

    /// Transported exactly like [`Circuit`] (same arena nodes).
    fn is_portable() -> bool {
        true
    }

    fn to_portable(batch: Vec<Self>) -> Portable {
        Circuit::to_portable(batch.into_iter().map(|b| b.0).collect())
    }

    fn from_portable(token: Portable) -> Vec<Self> {
        Circuit::from_portable(token)
            .into_iter()
            .map(BoolCircuit)
            .collect()
    }
}

impl CommutativeSemiring for BoolCircuit {}
impl PlusIdempotent for BoolCircuit {}

impl PartialEq for BoolCircuit {
    fn eq(&self, other: &Self) -> bool {
        self.0.same_node(&other.0) || self.to_posbool() == other.to_posbool()
    }
}

impl Eq for BoolCircuit {}

impl fmt::Debug for BoolCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nodes = self.0.node_count();
        if nodes <= 64 {
            write!(f, "{:?}", self.to_posbool())
        } else {
            write!(f, "bool-circuit#{}⟨{} nodes⟩", self.0.id, nodes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::monomial::Monomial;
    use crate::natural::Natural;
    use crate::properties::check_semiring_laws;
    use crate::tropical::Tropical;

    fn x(name: &str) -> Circuit {
        Circuit::var(name)
    }

    fn nat(n: u64) -> Natural {
        Natural::from(n)
    }

    #[test]
    fn constants_and_identities_fold_structurally() {
        let a = x("a");
        assert!(Circuit::zero().is_zero());
        assert!(Circuit::one().is_one());
        assert!(a.plus(&Circuit::zero()).same_node(&a));
        assert!(Circuit::zero().plus(&a).same_node(&a));
        assert!(a.times(&Circuit::one()).same_node(&a));
        assert!(a.times(&Circuit::zero()).is_zero());
        assert!(!a.is_zero() && !a.is_one());
    }

    #[test]
    fn hash_consing_shares_structurally_equal_nodes() {
        let before = arena_node_count();
        let e1 = x("p").times(&x("r")).plus(&x("s"));
        let grown = arena_node_count();
        let e2 = x("p").times(&x("r")).plus(&x("s"));
        assert!(e1.same_node(&e2));
        assert_eq!(arena_node_count(), grown, "rebuilding interned nothing new");
        assert!(grown > before);
        // Commutativity is shared structurally via operand sorting.
        assert!(x("p").plus(&x("r")).same_node(&x("r").plus(&x("p"))));
        assert!(x("p").times(&x("r")).same_node(&x("r").times(&x("p"))));
    }

    #[test]
    fn lowering_matches_polynomial_arithmetic() {
        // Figure 5(c) for (d,e): r·r + r·r + r·s = 2r² + rs.
        let de = x("r")
            .times(&x("r"))
            .plus(&x("r").times(&x("r")))
            .plus(&x("r").times(&x("s")));
        let expected = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
        ]);
        assert_eq!(de.to_polynomial(), expected);
    }

    #[test]
    fn semantic_equality_crosses_association() {
        let l = x("a").plus(&x("b")).plus(&x("c"));
        let r = x("a").plus(&x("b").plus(&x("c")));
        assert!(!l.same_node(&r));
        assert_eq!(l, r);
        assert_ne!(l, x("a").plus(&x("b")));
    }

    #[test]
    fn eval_agrees_with_polynomial_eval() {
        let e = x("p")
            .times(&x("p"))
            .repeat(2)
            .plus(&x("r").times(&x("s")))
            .plus(&Circuit::constant(3));
        let v = Valuation::from_pairs([("p", nat(2)), ("r", nat(5)), ("s", nat(1))]);
        assert_eq!(e.eval(&v), e.to_polynomial().eval(&v));
        let vt = Valuation::from_pairs([
            ("p", Tropical::cost(2)),
            ("r", Tropical::cost(5)),
            ("s", Tropical::cost(1)),
        ]);
        assert_eq!(e.eval(&vt), e.to_polynomial().eval(&vt));
        // Unassigned variables evaluate to zero, like the polynomial path.
        let partial = Valuation::from_pairs([("p", nat(2))]);
        assert_eq!(x("q").eval(&partial), Natural::zero());
    }

    #[test]
    fn iterated_squaring_stays_linear_in_circuit_form() {
        // (a + b)^(2^k) has 2^k + 1 expanded terms but O(k) circuit nodes;
        // memoized evaluation recovers the closed form 2^(2^k) at a = b = 1.
        let mut square = x("a").plus(&x("b"));
        const K: u32 = 5;
        for _ in 0..K {
            square = square.times(&square);
        }
        assert!(square.node_count() <= 4 + K as usize);
        let ones = Valuation::from_pairs([("a", nat(1)), ("b", nat(1))]);
        assert_eq!(square.eval(&ones), nat(2u64.pow(2u32.pow(K))));
    }

    #[test]
    fn product_of_sums_is_exponential_expanded_but_linear_shared() {
        // Π (xᵢ + yᵢ) for 40 factors: 2^40 expanded monomials — far beyond
        // materializing — but ~4 nodes per factor in circuit form.
        let mut product = Circuit::one();
        for i in 0..40 {
            product
                .times_assign(&Circuit::var(format!("x{i}")).plus(&Circuit::var(format!("y{i}"))));
        }
        assert!(product.node_count() <= 1 + 4 * 40);
        let all_ones = Valuation::from_pairs(
            (0..40).flat_map(|i| [(format!("x{i}"), nat(1)), (format!("y{i}"), nat(1))]),
        );
        assert_eq!(product.eval(&all_ones), nat(1u64 << 40));
    }

    #[test]
    fn circuit_eval_memo_is_shared_across_roots() {
        let shared = x("a").plus(&x("b")).times(&x("c"));
        let r1 = shared.times(&x("d"));
        let r2 = shared.times(&x("e"));
        let v = Valuation::from_pairs([
            ("a", nat(1)),
            ("b", nat(2)),
            ("c", nat(3)),
            ("d", nat(4)),
            ("e", nat(5)),
        ]);
        let mut eval = CircuitEval::new(&v);
        assert_eq!(eval.eval(r1), nat(36));
        let after_first = eval.evaluated_nodes();
        assert_eq!(eval.eval(r2), nat(45));
        // The second root only added its two fresh nodes (e, shared·e).
        assert_eq!(eval.evaluated_nodes(), after_first + 2);
    }

    #[test]
    fn from_polynomial_round_trips() {
        let p = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), nat(2)),
            (Monomial::from_bag(["r", "s"]), nat(1)),
            (Monomial::unit(), nat(7)),
        ]);
        assert_eq!(Circuit::from_polynomial(&p).to_polynomial(), p);
        assert!(Circuit::from_polynomial(&Polynomial::zero()).is_zero());
        assert!(Circuit::from_polynomial(&Polynomial::one()).is_one());
    }

    #[test]
    fn reference_harness_accepts_circuit_samples() {
        let samples = vec![
            Circuit::zero(),
            Circuit::one(),
            x("p"),
            x("r"),
            x("p").plus(&x("r")),
            x("p").times(&x("r")).plus(&Circuit::constant(2)),
        ];
        check_semiring_laws(&samples).expect("circuit semiring laws");
    }

    #[test]
    fn reset_truncates_the_arena() {
        let before = arena_node_count();
        let _ = x("tmp1").times(&x("tmp2"));
        assert!(arena_node_count() > before);
        reset();
        assert_eq!(arena_node_count(), 2);
        // The arena is usable again immediately.
        assert_eq!(
            x("tmp1").eval(&Valuation::from_pairs([("tmp1", nat(9))])),
            nat(9)
        );
    }

    #[test]
    fn shared_node_count_over_several_roots() {
        reset();
        let a = x("a");
        let b = x("b");
        let ab = a.times(&b);
        // Roots {ab, a} reach {0?, no — just a, b, ab}: 3 nodes.
        assert_eq!(shared_node_count([ab, a]), 3);
        assert_eq!(shared_node_count([Circuit::zero()]), 1);
        assert_eq!(shared_node_count(Vec::new()), 0);
    }

    #[test]
    fn bool_circuit_is_plus_idempotent_and_absorptive() {
        let p = BoolCircuit::var("p");
        let r = BoolCircuit::var("r");
        assert_eq!(p.plus(&p), p);
        assert_eq!(p.times(&p), p);
        // Absorption: p + p·r = p in PosBool.
        assert_eq!(p.plus(&p.times(&r)), p);
        assert_ne!(p.plus(&r), p);
        // ℕ[X]-equality is finer: the same nodes are *not* equal as Circuit.
        assert_ne!(p.circuit().plus(&p.circuit()), p.circuit());
    }

    #[test]
    fn stale_handles_panic_instead_of_aliasing_the_new_generation() {
        let old = x("victim").times(&x("witness"));
        reset();
        // The new generation interns something at the same ids.
        let _ = x("other").times(&x("another"));
        let err = std::panic::catch_unwind(|| old.to_polynomial())
            .expect_err("stale handle must not read the reset arena");
        let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("stale circuit handle"), "{message}");
        // Constants survive every reset.
        assert!(Circuit::zero().is_zero());
        assert!(Circuit::one().plus(&Circuit::zero()).is_one());
    }

    #[test]
    fn circuit_eval_refuses_a_memo_across_reset() {
        let v: Valuation<Natural> = Valuation::from_pairs([("a", nat(2))]);
        let mut eval = CircuitEval::new(&v);
        assert_eq!(eval.eval(x("a")), nat(2));
        reset();
        let fresh = x("a");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval.eval(fresh)))
            .expect_err("memo must not survive a reset");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("CircuitEval memo outlived"), "{message}");
    }

    #[test]
    fn sessions_scope_the_arena_and_block_bare_resets() {
        reset();
        let outside = arena_node_count();
        CircuitSession::run(|| {
            let _ = x("inside").plus(&x("session"));
            assert!(arena_node_count() > outside);
            // A bare reset under a session is the footgun the guard closes.
            let err = std::panic::catch_unwind(reset).expect_err("reset under session");
            let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(message.contains("CircuitSession is active"), "{message}");
        });
        assert_eq!(arena_node_count(), 2, "session drop reclaimed its nodes");
        // After the session, resets work again and the arena is usable.
        reset();
        assert!(!x("after").is_zero());
    }

    #[test]
    fn portable_round_trip_preserves_semantics_and_sharing() {
        reset();
        let shared = x("a").plus(&x("b"));
        let batch = vec![
            Circuit::zero(),
            Circuit::one(),
            shared.times(&shared),
            shared.times(&x("c")),
            Circuit::constant(3),
        ];
        let expected: Vec<ProvenancePolynomial> =
            batch.iter().map(Circuit::to_polynomial).collect();
        let token = Circuit::to_portable(batch.clone());
        // Same thread: importing dedups against the existing arena, so the
        // round trip interns nothing new and returns the very same nodes.
        let before = arena_node_count();
        let back = Circuit::from_portable(token);
        assert_eq!(arena_node_count(), before);
        for (orig, round) in batch.iter().zip(&back) {
            assert!(orig.same_node(round));
        }
        // Cross thread: the receiving arena is fresh; values must agree.
        let token = Circuit::to_portable(batch);
        let lowered = std::thread::scope(|s| {
            s.spawn(move || {
                let imported = Circuit::from_portable(token);
                // The worker's arena holds only what the import reached.
                assert!(arena_node_count() <= before);
                imported
                    .iter()
                    .map(Circuit::to_polynomial)
                    .collect::<Vec<_>>()
            })
            .join()
            .expect("worker")
        });
        assert_eq!(lowered, expected);
    }

    #[test]
    fn bool_circuit_portability_matches_circuit() {
        assert!(BoolCircuit::is_portable() && Circuit::is_portable());
        let batch = vec![BoolCircuit::var("p").plus(&BoolCircuit::var("r"))];
        let expected = batch[0].to_posbool();
        let token = BoolCircuit::to_portable(batch);
        let back = BoolCircuit::from_portable(token);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].to_posbool(), expected);
    }

    #[test]
    fn bool_circuit_eval_through_posbool() {
        let e = BoolCircuit::var("p")
            .times(&BoolCircuit::var("r"))
            .plus(&BoolCircuit::var("p"));
        assert_eq!(e.to_posbool(), PosBool::var("p"));
        let v = Valuation::from_pairs([("p", Bool::from(true)), ("r", Bool::from(false))]);
        assert_eq!(e.circuit().eval(&v), Bool::from(true));
    }
}

//! The event semiring `(P(Ω), ∪, ∩, ∅, Ω)` used by probabilistic event
//! tables (Fuhr–Rölleke, Zimányi; Figure 4 of the paper).
//!
//! `Ω` is a finite sample space of possible worlds; an annotation is the
//! event (set of worlds) in which the tuple is present. Because `zero()` and
//! `one()` cannot know Ω, events are represented in a *complement-closed*
//! form: either an explicit finite set of worlds, or the complement of one.
//! This makes `(P(Ω), ∪, ∩, ∅, Ω)` expressible without threading Ω through
//! the semiring operations, while remaining exact once a concrete Ω is fixed.

use crate::traits::{
    CommutativeSemiring, DistributiveLattice, NaturallyOrdered, OmegaContinuous, PlusIdempotent,
    Semiring,
};
use std::collections::BTreeSet;
use std::fmt;

/// A world identifier within the finite sample space Ω.
pub type WorldId = u32;

/// An event over a finite sample space: a set of possible worlds, stored
/// either positively (`Include`) or as a complement (`Exclude`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// Exactly these worlds.
    Include(BTreeSet<WorldId>),
    /// All worlds except these.
    Exclude(BTreeSet<WorldId>),
}

impl Event {
    /// The impossible event ∅ (the additive unit).
    pub fn never() -> Self {
        Event::Include(BTreeSet::new())
    }

    /// The certain event Ω (the multiplicative unit).
    pub fn always() -> Self {
        Event::Exclude(BTreeSet::new())
    }

    /// An event holding exactly in the given worlds.
    pub fn of_worlds<I: IntoIterator<Item = WorldId>>(worlds: I) -> Self {
        Event::Include(worlds.into_iter().collect())
    }

    /// An event holding in all worlds except the given ones.
    pub fn excluding<I: IntoIterator<Item = WorldId>>(worlds: I) -> Self {
        Event::Exclude(worlds.into_iter().collect())
    }

    /// Does the event hold in world `w`?
    pub fn contains(&self, w: WorldId) -> bool {
        match self {
            Event::Include(s) => s.contains(&w),
            Event::Exclude(s) => !s.contains(&w),
        }
    }

    /// The complement event.
    pub fn complement(&self) -> Event {
        match self {
            Event::Include(s) => Event::Exclude(s.clone()),
            Event::Exclude(s) => Event::Include(s.clone()),
        }
    }

    /// Materializes the event as an explicit set of worlds, given the size of
    /// the sample space `|Ω| = num_worlds` (worlds are `0..num_worlds`).
    pub fn worlds(&self, num_worlds: u32) -> BTreeSet<WorldId> {
        match self {
            Event::Include(s) => s.iter().copied().filter(|w| *w < num_worlds).collect(),
            Event::Exclude(s) => (0..num_worlds).filter(|w| !s.contains(w)).collect(),
        }
    }

    /// The probability of the event given per-world probabilities
    /// `world_probs[w]` (which must sum to 1 for a genuine distribution).
    pub fn probability(&self, world_probs: &[f64]) -> f64 {
        (0..world_probs.len() as u32)
            .filter(|w| self.contains(*w))
            .map(|w| world_probs[w as usize])
            .sum()
    }

    fn union(&self, other: &Event) -> Event {
        match (self, other) {
            (Event::Include(a), Event::Include(b)) => Event::Include(a.union(b).copied().collect()),
            (Event::Exclude(a), Event::Exclude(b)) => {
                Event::Exclude(a.intersection(b).copied().collect())
            }
            (Event::Include(a), Event::Exclude(b)) | (Event::Exclude(b), Event::Include(a)) => {
                // (Ω \ b) ∪ a = Ω \ (b \ a)
                Event::Exclude(b.difference(a).copied().collect())
            }
        }
    }

    fn intersection(&self, other: &Event) -> Event {
        match (self, other) {
            (Event::Include(a), Event::Include(b)) => {
                Event::Include(a.intersection(b).copied().collect())
            }
            (Event::Exclude(a), Event::Exclude(b)) => Event::Exclude(a.union(b).copied().collect()),
            (Event::Include(a), Event::Exclude(b)) | (Event::Exclude(b), Event::Include(a)) => {
                // a ∩ (Ω \ b) = a \ b
                Event::Include(a.difference(b).copied().collect())
            }
        }
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Include(s) => write!(f, "worlds{s:?}"),
            Event::Exclude(s) if s.is_empty() => write!(f, "Ω"),
            Event::Exclude(s) => write!(f, "Ω∖{s:?}"),
        }
    }
}

impl Semiring for Event {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Event::never()
    }

    fn one() -> Self {
        Event::always()
    }

    fn plus(&self, other: &Self) -> Self {
        self.union(other)
    }

    fn times(&self, other: &Self) -> Self {
        self.intersection(other)
    }
}

impl CommutativeSemiring for Event {}
impl PlusIdempotent for Event {}

impl NaturallyOrdered for Event {
    fn natural_leq(&self, other: &Self) -> bool {
        // Subset order: a ≤ b ⇔ a ∪ b = b.
        self.plus(other) == *other
    }
}

impl OmegaContinuous for Event {
    fn star(&self) -> Self {
        // Ω ∪ a ∪ (a∩a) ∪ ⋯ = Ω.
        Event::always()
    }
}

impl DistributiveLattice for Event {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_distributive_lattice, check_semiring_laws};

    fn samples() -> Vec<Event> {
        vec![
            Event::never(),
            Event::always(),
            Event::of_worlds([0]),
            Event::of_worlds([1, 2]),
            Event::of_worlds([0, 2, 3]),
            Event::excluding([1]),
            Event::excluding([0, 3]),
        ]
    }

    #[test]
    fn event_semiring_laws() {
        check_semiring_laws(&samples()).expect("event semiring laws");
    }

    #[test]
    fn event_lattice_laws() {
        check_distributive_lattice(&samples()).expect("event lattice laws");
    }

    #[test]
    fn union_and_intersection_are_plus_and_times() {
        let a = Event::of_worlds([0, 1]);
        let b = Event::of_worlds([1, 2]);
        assert_eq!(a.plus(&b), Event::of_worlds([0, 1, 2]));
        assert_eq!(a.times(&b), Event::of_worlds([1]));
    }

    #[test]
    fn complement_representation_is_exact() {
        let not1 = Event::excluding([1]);
        assert!(not1.contains(0));
        assert!(!not1.contains(1));
        assert!(not1.contains(2));
        // (Ω∖{1}) ∩ {0,1} = {0}
        assert_eq!(not1.times(&Event::of_worlds([0, 1])), Event::of_worlds([0]));
        // (Ω∖{1}) ∪ {1} = Ω
        assert_eq!(not1.plus(&Event::of_worlds([1])), Event::always());
    }

    #[test]
    fn de_morgan_style_combinations() {
        let a = Event::excluding([0, 1]);
        let b = Event::excluding([1, 2]);
        // (Ω∖{0,1}) ∪ (Ω∖{1,2}) = Ω∖{1}
        assert_eq!(a.plus(&b), Event::excluding([1]));
        // (Ω∖{0,1}) ∩ (Ω∖{1,2}) = Ω∖{0,1,2}
        assert_eq!(a.times(&b), Event::excluding([0, 1, 2]));
    }

    #[test]
    fn worlds_materialization_and_probability() {
        let e = Event::excluding([1]);
        assert_eq!(e.worlds(4), [0u32, 2, 3].into_iter().collect());
        // Worlds with probabilities 0.1, 0.2, 0.3, 0.4: P(Ω∖{1}) = 0.8.
        let p = e.probability(&[0.1, 0.2, 0.3, 0.4]);
        assert!((p - 0.8).abs() < 1e-12);
        assert_eq!(Event::never().probability(&[0.5, 0.5]), 0.0);
        assert_eq!(Event::always().probability(&[0.5, 0.5]), 1.0);
    }

    #[test]
    fn natural_order_is_subset() {
        assert!(Event::of_worlds([1]).natural_leq(&Event::of_worlds([0, 1])));
        assert!(Event::of_worlds([1]).natural_leq(&Event::always()));
        assert!(Event::never().natural_leq(&Event::of_worlds([7])));
        assert!(!Event::always().natural_leq(&Event::of_worlds([7])));
    }
}

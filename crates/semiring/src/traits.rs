//! Core algebraic traits: semirings, commutative semirings, natural order,
//! ω-continuity, and distributive lattices.
//!
//! The paper ("Provenance Semirings", PODS 2007) identifies **commutative
//! semirings** `(K, +, ·, 0, 1)` as exactly the algebraic structure needed so
//! that the positive relational algebra on annotated relations satisfies the
//! expected identities (Proposition 3.4). Datalog additionally requires
//! **ω-continuous** semirings (Section 5), and the terminating datalog
//! evaluation of Section 8 requires K to be a **finite distributive
//! lattice**.

use std::any::Any;
use std::fmt::Debug;

/// A type-erased, `Send` batch of annotations in transit between threads.
///
/// The parallel engines (the morsel-driven executor of `provsem-core` and
/// the parallel semi-naive rounds of `provsem-datalog`) move batches of
/// annotations across worker-thread boundaries. Most semirings are plain
/// `Send` data and travel as-is; provenance circuits are *handles into a
/// thread-local arena* and must be re-encoded (exported to an
/// arena-independent node list, then re-interned on the receiving thread).
/// `Portable` erases that difference: [`Semiring::to_portable`] seals a
/// batch on the sending thread, [`Semiring::from_portable`] opens it on the
/// receiving one.
///
/// The token is opaque by design — the only valid consumer is
/// `from_portable` of the *same* semiring type.
pub struct Portable(Box<dyn Any + Send>);

impl Portable {
    /// Wraps a `Send` payload.
    pub fn new<T: Send + 'static>(payload: T) -> Portable {
        Portable(Box::new(payload))
    }

    /// Recovers the payload.
    ///
    /// # Panics
    /// Panics if the token was produced for a different payload type — which
    /// indicates a semiring's `to_portable`/`from_portable` pair disagrees.
    pub fn unwrap<T: 'static>(self) -> T {
        *self
            .0
            .downcast::<T>()
            .expect("Portable token opened as a different type than it was sealed as")
    }
}

impl Debug for Portable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Portable(..)")
    }
}

/// Implements the [`Semiring`] cross-thread transport hooks for a semiring
/// whose values are ordinary `Send + 'static` data: the batch travels as-is.
/// Invoke inside the `impl Semiring for …` block.
macro_rules! portable_by_send {
    () => {
        fn is_portable() -> bool {
            true
        }

        fn to_portable(batch: Vec<Self>) -> $crate::traits::Portable {
            $crate::traits::Portable::new(batch)
        }

        fn from_portable(token: $crate::traits::Portable) -> Vec<Self> {
            token.unwrap::<Vec<Self>>()
        }
    };
}

pub(crate) use portable_by_send;

/// A semiring `(K, +, ·, 0, 1)`.
///
/// Laws (checked for every implementation in this crate by the harness in
/// [`crate::properties`]):
///
/// * `(K, +, 0)` is a commutative monoid,
/// * `(K, ·, 1)` is a monoid,
/// * `·` distributes over `+` on both sides,
/// * `0 · a = a · 0 = 0` (0 is annihilating).
///
/// Elements are passed by reference because several provenance semirings
/// (polynomials, positive boolean expressions, power series) are not `Copy`.
/// The `'static` bound says annotations are self-contained values (they
/// never borrow from the database), which is what lets the parallel engines
/// move batches of them between threads through [`Portable`] tokens.
pub trait Semiring: Clone + PartialEq + Debug + 'static {
    /// The additive identity, used to tag tuples that are *not* in a
    /// K-relation.
    fn zero() -> Self;

    /// The multiplicative identity, used to tag tuples that are *in* the
    /// relation with "neutral" annotation.
    fn one() -> Self;

    /// Addition, combining different derivations of the same tuple
    /// (union, projection).
    fn plus(&self, other: &Self) -> Self;

    /// Multiplication, combining annotations of joint use
    /// (natural join, selection).
    fn times(&self, other: &Self) -> Self;

    /// Returns `true` iff `self` is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Returns `true` iff `self` is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// In-place addition; the default just delegates to [`Semiring::plus`].
    fn plus_assign(&mut self, other: &Self) {
        *self = self.plus(other);
    }

    /// In-place multiplication; the default just delegates to
    /// [`Semiring::times`].
    fn times_assign(&mut self, other: &Self) {
        *self = self.times(other);
    }

    /// Sums a finite iterator of elements (the empty sum is `0`).
    fn sum<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut acc = Self::zero();
        for x in iter {
            acc.plus_assign(x);
        }
        acc
    }

    /// Multiplies a finite iterator of elements (the empty product is `1`).
    fn product<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut acc = Self::one();
        for x in iter {
            acc.times_assign(x);
        }
        acc
    }

    /// `n·a`, the sum of `n` copies of `a`. This is the canonical embedding
    /// of ℕ into any semiring used when evaluating provenance polynomials
    /// (Section 4 of the paper: "`na` where `n ∈ ℕ` and `a ∈ K` is the sum in
    /// K of n copies of a").
    fn repeat(&self, n: u64) -> Self {
        // Double-and-add so that evaluating polynomials with large integer
        // coefficients stays logarithmic in the coefficient.
        let mut result = Self::zero();
        let mut base = self.clone();
        let mut k = n;
        while k > 0 {
            if k & 1 == 1 {
                result.plus_assign(&base);
            }
            k >>= 1;
            if k > 0 {
                base = base.plus(&base);
            }
        }
        result
    }

    /// Can batches of this semiring's values cross a thread boundary through
    /// [`Semiring::to_portable`] / [`Semiring::from_portable`]?
    ///
    /// The default is `false`, in which case the parallel engines fall back
    /// to their serial code path for this semiring (they never call the
    /// transport hooks). Every semiring in this crate opts in: plain data
    /// semirings travel as-is, and [`crate::circuit::Circuit`] re-encodes
    /// its thread-local arena handles (see the `circuit` module docs).
    fn is_portable() -> bool {
        false
    }

    /// Seals a batch of values into a [`Portable`] token that can be moved
    /// to another thread. Only called when [`Semiring::is_portable`] is
    /// `true`; the pair `to_portable`/`from_portable` must round-trip the
    /// batch exactly (same length, semantically equal values).
    fn to_portable(batch: Vec<Self>) -> Portable {
        let _ = batch;
        unreachable!("to_portable called on a semiring with is_portable() == false")
    }

    /// Opens a [`Portable`] token sealed by [`Semiring::to_portable`] on
    /// another thread, re-materializing the values in the current thread.
    fn from_portable(token: Portable) -> Vec<Self> {
        let _ = token;
        unreachable!("from_portable called on a semiring with is_portable() == false")
    }

    /// `a^n`, the product of `n` copies of `a` (with `a^0 = 1`).
    fn pow(&self, n: u32) -> Self {
        let mut result = Self::one();
        let mut base = self.clone();
        let mut k = n;
        while k > 0 {
            if k & 1 == 1 {
                result.times_assign(&base);
            }
            k >>= 1;
            if k > 0 {
                base = base.times(&base);
            }
        }
        result
    }
}

/// Marker trait for semirings whose multiplication is commutative.
///
/// All the annotation structures used by the paper — 𝔹, ℕ, ℕ∞, PosBool(B),
/// P(Ω), ℕ\[X\], ℕ∞\[\[X\]\], the tropical and fuzzy semirings — are commutative.
pub trait CommutativeSemiring: Semiring {}

/// Semirings in which `+` is idempotent (`a + a = a`).
///
/// Idempotence of `+` is what makes the semi-naive datalog evaluation an
/// *exact* optimization; for non-idempotent semirings such as ℕ or ℕ\[X\] the
/// naive re-derivation count matters and semi-naive evaluation must be
/// treated as an approximation of the derivation-tree semantics.
pub trait PlusIdempotent: Semiring {}

/// A semiring that is *naturally ordered*: the relation
/// `a ≤ b ⇔ ∃x. a + x = b` is a partial order (Section 5 of the paper).
///
/// Implementations must provide a decision procedure for that order.
pub trait NaturallyOrdered: Semiring {
    /// Returns `true` iff `self ≤ other` in the natural order.
    fn natural_leq(&self, other: &Self) -> bool;

    /// Returns `true` iff the two elements are incomparable.
    fn incomparable(&self, other: &Self) -> bool {
        !self.natural_leq(other) && !other.natural_leq(self)
    }
}

/// An ω-continuous commutative semiring (Section 5): naturally ordered,
/// ω-chains have least upper bounds, and `+`/`·` are ω-continuous in each
/// argument. Such semirings admit countable sums and Kleene star, and least
/// fixed points of polynomial systems exist (Definition 5.5).
pub trait OmegaContinuous: CommutativeSemiring + NaturallyOrdered {
    /// Kleene star: `a* = 1 + a + a² + a³ + ⋯` (the least solution of
    /// `x = a·x + 1`). For example, in ℕ∞ `1* = ∞`, while in PosBool(B)
    /// `e* = true` for every `e` (Section 5).
    fn star(&self) -> Self;

    /// An upper bound on the number of fixpoint iterations needed before the
    /// iteration of a polynomial system over this semiring is guaranteed to
    /// have converged, if such a bound exists (e.g. finite lattices). `None`
    /// means no uniform bound (ℕ∞, ℕ∞\[\[X\]\]).
    fn convergence_bound(num_variables: usize) -> Option<usize> {
        let _ = num_variables;
        None
    }
}

/// A bounded distributive lattice viewed as a semiring: `+` = join `∨`,
/// `·` = meet `∧`, `0` = bottom, `1` = top. Both operations are idempotent
/// and absorption holds (`a ∨ (a ∧ b) = a`).
///
/// Distributive lattices are the class for which the paper proves both the
/// terminating datalog evaluation (Section 8) and the containment transfer
/// theorem (Theorem 9.2). Examples: 𝔹, PosBool(B), P(Ω), the fuzzy semiring.
pub trait DistributiveLattice: OmegaContinuous + PlusIdempotent {
    /// Lattice join (identical to [`Semiring::plus`]).
    fn join(&self, other: &Self) -> Self {
        self.plus(other)
    }

    /// Lattice meet (identical to [`Semiring::times`]).
    fn meet(&self, other: &Self) -> Self {
        self.times(other)
    }

    /// The lattice order `a ⊑ b ⇔ a ∨ b = b`; coincides with the natural
    /// order of the semiring.
    fn lattice_leq(&self, other: &Self) -> bool {
        self.plus(other) == *other
    }
}

/// A semiring with only finitely many elements. Finite distributive lattices
/// are the setting of Section 8 (datalog for incomplete and probabilistic
/// databases); finiteness gives the termination argument.
pub trait FiniteSemiring: Semiring {
    /// Enumerates every element of the semiring.
    fn enumerate() -> Vec<Self>;
}

/// A homomorphism of semirings `h : A → B`: `h(0)=0`, `h(1)=1`,
/// `h(a + a') = h(a) + h(a')`, `h(a · a') = h(a) · h(a')`.
///
/// Proposition 3.5: transforming K-relations tuple-wise through `h` commutes
/// with every RA⁺ query **iff** `h` is a semiring homomorphism. The same
/// holds for datalog when `h` is ω-continuous (Proposition 5.7).
pub trait SemiringHomomorphism<A: Semiring, B: Semiring> {
    /// Applies the homomorphism to one annotation.
    fn apply(&self, a: &A) -> B;

    /// Convenience: applies the homomorphism to a slice of annotations.
    fn apply_all(&self, xs: &[A]) -> Vec<B> {
        xs.iter().map(|x| self.apply(x)).collect()
    }
}

/// A homomorphism given by a plain Rust closure. Useful for one-off maps and
/// for testing Proposition 3.5 with both genuine homomorphisms and
/// deliberately broken maps.
pub struct FnHomomorphism<A, B, F>
where
    F: Fn(&A) -> B,
{
    func: F,
    _marker: std::marker::PhantomData<(A, B)>,
}

impl<A, B, F> FnHomomorphism<A, B, F>
where
    F: Fn(&A) -> B,
{
    /// Wraps a closure as a homomorphism object. The caller is responsible
    /// for the closure actually satisfying the homomorphism laws; the
    /// [`crate::properties::check_homomorphism`] harness can verify it on
    /// samples.
    pub fn new(func: F) -> Self {
        FnHomomorphism {
            func,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<A: Semiring, B: Semiring, F> SemiringHomomorphism<A, B> for FnHomomorphism<A, B, F>
where
    F: Fn(&A) -> B,
{
    fn apply(&self, a: &A) -> B {
        (self.func)(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::natural::Natural;

    #[test]
    fn repeat_is_iterated_addition() {
        let three = Natural::from(3u64);
        assert_eq!(three.repeat(0), Natural::zero());
        assert_eq!(three.repeat(1), three);
        assert_eq!(three.repeat(4), Natural::from(12u64));
        assert_eq!(three.repeat(25), Natural::from(75u64));
    }

    #[test]
    fn pow_is_iterated_multiplication() {
        let two = Natural::from(2u64);
        assert_eq!(two.pow(0), Natural::one());
        assert_eq!(two.pow(1), two);
        assert_eq!(two.pow(10), Natural::from(1024u64));
    }

    #[test]
    fn sum_and_product_over_iterators() {
        let xs = [
            Natural::from(1u64),
            Natural::from(2u64),
            Natural::from(3u64),
        ];
        assert_eq!(Natural::sum(xs.iter()), Natural::from(6u64));
        assert_eq!(Natural::product(xs.iter()), Natural::from(6u64));
        let empty: Vec<Natural> = vec![];
        assert_eq!(Natural::sum(empty.iter()), Natural::zero());
        assert_eq!(Natural::product(empty.iter()), Natural::one());
    }

    #[test]
    fn fn_homomorphism_applies_closure() {
        // Support homomorphism ℕ → 𝔹 sending n to (n ≠ 0).
        let h = FnHomomorphism::new(|n: &Natural| Bool::from(!n.is_zero()));
        assert_eq!(h.apply(&Natural::zero()), Bool::from(false));
        assert_eq!(h.apply(&Natural::from(7u64)), Bool::from(true));
        let all = h.apply_all(&[Natural::zero(), Natural::from(2u64)]);
        assert_eq!(all, vec![Bool::from(false), Bool::from(true)]);
    }

    #[test]
    fn repeat_in_boolean_semiring_saturates() {
        let t = Bool::from(true);
        assert_eq!(t.repeat(0), Bool::zero());
        assert_eq!(t.repeat(1), t);
        assert_eq!(t.repeat(1000), t);
    }
}

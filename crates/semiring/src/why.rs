//! Why-provenance semirings.
//!
//! * [`WhySet`] is the structure the paper uses in Section 4 to model
//!   lineage / why-provenance as defined by Cui–Widom–Wiener and
//!   Buneman–Khanna–Tan: `(P(X), ∪, ∪, ∅, ∅)`, the set of *all contributing
//!   input tuples*. Note that its 0 and 1 coincide — the paper points out
//!   this degeneracy as part of why why-provenance is a *coarse* form of
//!   provenance (Figure 5(b) cannot distinguish how `(f,e)` and `(d,e)` are
//!   derived).
//! * [`Witness`] (an extension, `Why(X) = P(P(X))` with `∪` and pairwise
//!   union) keeps the *witness sets*: which combinations of input tuples
//!   justify an output tuple. It sits strictly between ℕ\[X\] and `WhySet` in
//!   the specialization hierarchy of provenance semirings.

use crate::traits::{
    CommutativeSemiring, NaturallyOrdered, OmegaContinuous, PlusIdempotent, Semiring,
    SemiringHomomorphism,
};
use crate::variable::Variable;
use std::collections::BTreeSet;
use std::fmt;

/// Lineage / why-provenance as in the paper: a set of contributing tuple ids,
/// with both `+` and `·` being set union.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct WhySet {
    tuples: BTreeSet<Variable>,
}

impl WhySet {
    /// The empty set (which is simultaneously 0 and 1 of this semiring).
    pub fn empty() -> Self {
        WhySet::default()
    }

    /// The singleton set `{v}`.
    pub fn var(v: impl Into<Variable>) -> Self {
        let mut tuples = BTreeSet::new();
        tuples.insert(v.into());
        WhySet { tuples }
    }

    /// Builds a why-set from an iterator of tuple ids.
    pub fn from_vars<I, V>(vars: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Variable>,
    {
        WhySet {
            tuples: vars.into_iter().map(Into::into).collect(),
        }
    }

    /// The contributing tuple ids.
    pub fn tuples(&self) -> &BTreeSet<Variable> {
        &self.tuples
    }

    /// Number of contributing tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: &Variable) -> bool {
        self.tuples.contains(v)
    }
}

impl fmt::Debug for WhySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for WhySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Semiring for WhySet {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        WhySet::empty()
    }

    fn one() -> Self {
        // The paper's (P(X), ∪, ∪, ∅, ∅): 0 = 1 = ∅. This makes WhySet a
        // degenerate semiring; `is_zero`/`is_one` both hold for ∅ and the
        // K-relation machinery treats ∅-annotated tuples as absent, exactly
        // matching the lineage semantics.
        WhySet::empty()
    }

    fn plus(&self, other: &Self) -> Self {
        WhySet {
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    fn times(&self, other: &Self) -> Self {
        WhySet {
            tuples: self.tuples.union(&other.tuples).cloned().collect(),
        }
    }

    fn is_zero(&self) -> bool {
        self.tuples.is_empty()
    }

    fn is_one(&self) -> bool {
        self.tuples.is_empty()
    }
}

impl CommutativeSemiring for WhySet {}
impl PlusIdempotent for WhySet {}

impl NaturallyOrdered for WhySet {
    fn natural_leq(&self, other: &Self) -> bool {
        self.tuples.is_subset(&other.tuples)
    }
}

impl OmegaContinuous for WhySet {
    fn star(&self) -> Self {
        // 1 + a + a·a + ⋯ = ∅ ∪ a ∪ a ∪ ⋯ = a.
        self.clone()
    }
}

/// A witness: one set of input tuples that jointly derive an output tuple.
pub type WitnessSet = BTreeSet<Variable>;

/// The witness-based why-provenance semiring `Why(X) = (P(P(X)), ∪, ⋓, ∅, {∅})`
/// where `A ⋓ B = { a ∪ b | a ∈ A, b ∈ B }`.
///
/// Kept as an antichain-free set of witnesses (no minimization), so it
/// records every distinct witness combination; minimizing witnesses yields
/// minimal-why-provenance which is a further quotient.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Witness {
    witnesses: BTreeSet<WitnessSet>,
}

impl Witness {
    /// No witnesses (the additive unit: the tuple is underivable).
    pub fn none() -> Self {
        Witness::default()
    }

    /// The single empty witness (the multiplicative unit).
    pub fn trivial() -> Self {
        let mut witnesses = BTreeSet::new();
        witnesses.insert(WitnessSet::new());
        Witness { witnesses }
    }

    /// A single witness consisting of exactly the tuple `v`.
    pub fn var(v: impl Into<Variable>) -> Self {
        let mut w = WitnessSet::new();
        w.insert(v.into());
        let mut witnesses = BTreeSet::new();
        witnesses.insert(w);
        Witness { witnesses }
    }

    /// Builds a witness structure from an iterator of witnesses.
    pub fn from_witnesses<I, C, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = V>,
        V: Into<Variable>,
    {
        Witness {
            witnesses: iter
                .into_iter()
                .map(|c| c.into_iter().map(Into::into).collect())
                .collect(),
        }
    }

    /// The set of witnesses.
    pub fn witnesses(&self) -> &BTreeSet<WitnessSet> {
        &self.witnesses
    }

    /// Flattens to the paper's `WhySet` (union of all witnesses) — the
    /// canonical surjective homomorphism `Why(X) → (P(X), ∪, ∪)` exhibiting
    /// `WhySet` as a coarsening.
    pub fn flatten(&self) -> WhySet {
        WhySet::from_vars(self.witnesses.iter().flat_map(|w| w.iter().cloned()))
    }
}

impl fmt::Debug for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, w) in self.witnesses.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{")?;
            for (j, v) in w.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

impl Semiring for Witness {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Witness::none()
    }

    fn one() -> Self {
        Witness::trivial()
    }

    fn plus(&self, other: &Self) -> Self {
        Witness {
            witnesses: self.witnesses.union(&other.witnesses).cloned().collect(),
        }
    }

    fn times(&self, other: &Self) -> Self {
        let mut witnesses = BTreeSet::new();
        for a in &self.witnesses {
            for b in &other.witnesses {
                witnesses.insert(a.union(b).cloned().collect());
            }
        }
        Witness { witnesses }
    }
}

impl CommutativeSemiring for Witness {}
impl PlusIdempotent for Witness {}

impl NaturallyOrdered for Witness {
    fn natural_leq(&self, other: &Self) -> bool {
        self.witnesses.is_subset(&other.witnesses)
    }
}

/// The homomorphism `Why(X) → (P(X), ∪, ∪)` that forgets witness structure.
pub struct FlattenWitnesses;

impl SemiringHomomorphism<Witness, WhySet> for FlattenWitnesses {
    fn apply(&self, a: &Witness) -> WhySet {
        a.flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::check_semiring_laws;

    fn why_samples() -> Vec<WhySet> {
        vec![
            WhySet::empty(),
            WhySet::var("p"),
            WhySet::var("r"),
            WhySet::from_vars(["p", "r"]),
            WhySet::from_vars(["r", "s"]),
        ]
    }

    fn witness_samples() -> Vec<Witness> {
        vec![
            Witness::none(),
            Witness::trivial(),
            Witness::var("p"),
            Witness::var("r"),
            Witness::from_witnesses(vec![vec!["p", "r"], vec!["s"]]),
        ]
    }

    #[test]
    fn why_set_semiring_laws() {
        check_semiring_laws(&why_samples()).expect("WhySet semiring laws");
    }

    #[test]
    fn witness_semiring_laws() {
        check_semiring_laws(&witness_samples()).expect("Witness semiring laws");
    }

    #[test]
    fn why_set_zero_equals_one() {
        // The degeneracy the paper notes for (P(X), ∪, ∪, ∅, ∅).
        assert_eq!(WhySet::zero(), WhySet::one());
    }

    #[test]
    fn both_operations_are_union() {
        let pr = WhySet::from_vars(["p", "r"]);
        let rs = WhySet::from_vars(["r", "s"]);
        let all = WhySet::from_vars(["p", "r", "s"]);
        assert_eq!(pr.plus(&rs), all);
        assert_eq!(pr.times(&rs), all);
    }

    #[test]
    fn figure5b_cannot_distinguish_fe_from_de() {
        // Figure 5(b): (f,e) and (d,e) both get {r, s} — the limitation of
        // why-provenance motivating provenance polynomials.
        let de = WhySet::from_vars(["r", "s"]);
        let fe = WhySet::from_vars(["r", "s"]);
        assert_eq!(de, fe);
    }

    #[test]
    fn witnesses_do_distinguish_fe_from_de() {
        // Witness-level provenance of (d,e): {{r},{r,s}}; of (f,e): {{s},{r,s}}.
        let de = Witness::from_witnesses(vec![vec!["r"], vec!["r", "s"]]);
        let fe = Witness::from_witnesses(vec![vec!["s"], vec!["r", "s"]]);
        assert_ne!(de, fe);
        // ... but they flatten to the same why-set.
        assert_eq!(de.flatten(), fe.flatten());
    }

    #[test]
    fn witness_multiplication_is_pairwise_union() {
        let a = Witness::from_witnesses(vec![vec!["p"], vec!["r"]]);
        let b = Witness::var("s");
        let prod = a.times(&b);
        assert_eq!(
            prod,
            Witness::from_witnesses(vec![vec!["p", "s"], vec!["r", "s"]])
        );
    }

    #[test]
    fn flatten_commutes_with_the_operations_on_nonzero_elements() {
        // Because WhySet is degenerate (0 = 1 = ∅), flattening cannot be a
        // homomorphism at 0 (flatten(0 · b) = ∅ but flatten(0) ∪ flatten(b)
        // = flatten(b)); on non-zero witnesses it commutes with both
        // operations, which is what the coarsening argument needs.
        let samples: Vec<Witness> = witness_samples()
            .into_iter()
            .filter(|w| !w.is_zero())
            .collect();
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    FlattenWitnesses.apply(&a.plus(b)),
                    FlattenWitnesses.apply(a).plus(&FlattenWitnesses.apply(b))
                );
                assert_eq!(
                    FlattenWitnesses.apply(&a.times(b)),
                    FlattenWitnesses.apply(a).times(&FlattenWitnesses.apply(b))
                );
            }
        }
    }

    #[test]
    fn natural_order_is_subset_order() {
        assert!(WhySet::var("p").natural_leq(&WhySet::from_vars(["p", "r"])));
        assert!(!WhySet::from_vars(["p", "r"]).natural_leq(&WhySet::var("p")));
    }
}

//! A deterministic, non-cryptographic hasher for the engine's hot hash maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed with a
//! per-map random seed: robust against hash-flooding, but measurably slow on
//! the short keys the engines hash millions of times — join keys
//! (`Vec<Value>`), fact vectors, and interned circuit nodes — and
//! non-deterministic in iteration order from run to run. This module is a
//! hand-rolled FxHash-style hasher (the multiply-and-rotate scheme used by
//! rustc's `FxHashMap`): one `rotate ⊕ multiply` step per 8 input bytes, no
//! seed, no allocation, no dependencies.
//!
//! Determinism is load-bearing, not just a nicety: the parallel executor
//! hash-partitions join and aggregation inputs by key
//! ([`fx_hash_one`] modulo the partition count), and the "parallel equals
//! serial, bit for bit" guarantee documented in the README relies on every
//! run assigning rows to the same partitions. All annotated inputs are
//! trusted workload data, so flood resistance buys nothing here.
//!
//! ```
//! use provsem_semiring::fxhash::{fx_hash_one, FxHashMap};
//!
//! let mut index: FxHashMap<&str, u32> = FxHashMap::default();
//! index.insert("p", 2);
//! assert_eq!(index.get("p"), Some(&2));
//! // Same value, same hash — in this process and every other one.
//! assert_eq!(fx_hash_one(&"p"), fx_hash_one(&"p"));
//! ```

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier from Firefox's original Fx hash (a 64-bit constant with
/// good bit dispersion under multiplication).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: a single `u64` folded with rotate-xor-multiply.
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Builds [`FxHasher`]s; the seedless `BuildHasher` behind the map aliases.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic [`FxHasher`]. Iteration order is
/// a function of the insertion sequence alone, so any map filled in a
/// deterministic order iterates deterministically — which the parallel
/// executor's "identical results at every thread count" guarantee builds on.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the deterministic [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one materialized value with [`FxHasher`] — the whole-row
/// partitioning function of the parallel executor's exchanges
/// (`fx_hash_one(row) % partitions`; column-subset keys drive an
/// [`FxHasher`] directly to avoid materializing the key).
#[inline]
pub fn fx_hash_one<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h1 = fx_hash_one(&("a", 1u64));
        let h2 = fx_hash_one(&("a", 1u64));
        assert_eq!(h1, h2);
        // Different values should (overwhelmingly) hash differently.
        let distinct: std::collections::BTreeSet<u64> =
            (0..1000u64).map(|i| fx_hash_one(&i)).collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn map_and_set_work_with_default() {
        let mut map: FxHashMap<Vec<u32>, &str> = FxHashMap::default();
        map.insert(vec![1, 2], "a");
        map.insert(vec![3], "b");
        assert_eq!(map.get([1, 2].as_slice()), Some(&"a"));
        let mut set: FxHashSet<&str> = FxHashSet::default();
        assert!(set.insert("x"));
        assert!(!set.insert("x"));
    }

    #[test]
    fn iteration_order_is_reproducible_for_same_insertions() {
        let build = || {
            let mut map: FxHashMap<u64, u64> = FxHashMap::default();
            for i in 0..100 {
                map.insert(i * 37, i);
            }
            map.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn partial_tail_bytes_are_hashed() {
        // 9 bytes = one full word + one tail byte; the tail must matter.
        assert_ne!(fx_hash_one(b"123456789".as_slice()), {
            fx_hash_one(b"123456780".as_slice())
        });
    }
}

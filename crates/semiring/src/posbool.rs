//! The semiring `PosBool(B)` of positive boolean expressions over a set of
//! variables `B`, modulo logical equivalence (Section 3 of the paper).
//!
//! This is the annotation structure of boolean c-tables in the sense of
//! Imielinski and Lipski: applying the generalized RA⁺ of Definition 3.2 to
//! `PosBool(B)`-relations *is* the Imielinski–Lipski query answering
//! algorithm (Figure 2).
//!
//! Elements are kept in a canonical form: an **irredundant monotone DNF**,
//! i.e. an antichain of minimal clauses (sets of variables). Because positive
//! boolean functions are in bijection with antichains of variable sets, two
//! expressions are equal in `PosBool(B)` exactly when their canonical forms
//! coincide — which is the identification "expressions that yield the same
//! truth-value for all boolean assignments" required by the paper (its
//! footnote 2 notes this is the same as applying the distributive-lattice
//! axioms).

use crate::traits::{
    CommutativeSemiring, DistributiveLattice, NaturallyOrdered, OmegaContinuous, PlusIdempotent,
    Semiring,
};
use crate::variable::{Valuation, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of variables (a clause of the monotone DNF). The empty
/// clause is the constant `true`.
pub type Clause = BTreeSet<Variable>;

/// A positive (monotone) boolean expression in canonical irredundant DNF.
///
/// * `clauses` empty ⇒ the constant `false` (no way to satisfy),
/// * `clauses = { ∅ }` ⇒ the constant `true`,
/// * otherwise an antichain of non-empty clauses: no clause is a subset of
///   another.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PosBool {
    clauses: BTreeSet<Clause>,
}

impl PosBool {
    /// The constant `false` (additive unit).
    pub fn ff() -> Self {
        PosBool {
            clauses: BTreeSet::new(),
        }
    }

    /// The constant `true` (multiplicative unit).
    pub fn tt() -> Self {
        let mut clauses = BTreeSet::new();
        clauses.insert(Clause::new());
        PosBool { clauses }
    }

    /// The expression consisting of a single variable.
    pub fn var(v: impl Into<Variable>) -> Self {
        let mut clause = Clause::new();
        clause.insert(v.into());
        let mut clauses = BTreeSet::new();
        clauses.insert(clause);
        PosBool { clauses }
    }

    /// A single conjunctive clause `v₁ ∧ ⋯ ∧ vₙ`.
    pub fn conjunction<I, V>(vars: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Variable>,
    {
        let clause: Clause = vars.into_iter().map(Into::into).collect();
        let mut clauses = BTreeSet::new();
        clauses.insert(clause);
        PosBool { clauses }
    }

    /// Builds an expression from a DNF given as clauses of variables,
    /// normalizing into canonical form.
    pub fn from_dnf<I, C, V>(dnf: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = V>,
        V: Into<Variable>,
    {
        let mut result = PosBool::ff();
        for clause in dnf {
            result = result.plus(&PosBool::conjunction(clause));
        }
        result
    }

    /// The canonical clauses (antichain of minimal clauses).
    pub fn clauses(&self) -> impl Iterator<Item = &Clause> {
        self.clauses.iter()
    }

    /// Number of clauses in the canonical DNF.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// All variables mentioned by the canonical form.
    pub fn variables(&self) -> BTreeSet<Variable> {
        self.clauses
            .iter()
            .flat_map(|c| c.iter().cloned())
            .collect()
    }

    /// Is this the constant `true`?
    pub fn is_true(&self) -> bool {
        self.clauses.len() == 1 && self.clauses.iter().next().map(|c| c.is_empty()) == Some(true)
    }

    /// Is this the constant `false`?
    pub fn is_false(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the expression under a total truth assignment. Variables not
    /// assigned are treated as `false` (monotone functions make this the
    /// conservative choice).
    pub fn evaluate(&self, assignment: &Valuation<bool>) -> bool {
        self.clauses.iter().any(|clause| {
            clause
                .iter()
                .all(|v| assignment.get(v).copied().unwrap_or(false))
        })
    }

    /// Evaluates the expression under an assignment given as the set of
    /// variables that are `true`.
    pub fn evaluate_set(&self, true_vars: &BTreeSet<Variable>) -> bool {
        self.clauses
            .iter()
            .any(|clause| clause.iter().all(|v| true_vars.contains(v)))
    }

    /// Substitutes each variable by a `PosBool` expression (a PosBool-valued
    /// valuation), yielding the composed expression. This is the unique
    /// lattice homomorphism extending the valuation.
    pub fn substitute(&self, valuation: &Valuation<PosBool>) -> PosBool {
        let mut result = PosBool::ff();
        for clause in &self.clauses {
            let mut term = PosBool::tt();
            for v in clause {
                let replacement = valuation
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| PosBool::var(v.clone()));
                term = term.times(&replacement);
            }
            result = result.plus(&term);
        }
        result
    }

    /// Semantic implication check: `self ⇒ other` for all assignments.
    /// Thanks to monotone canonical forms this reduces to: every clause of
    /// `self` is a superset of some clause of `other`.
    pub fn implies(&self, other: &PosBool) -> bool {
        self.clauses
            .iter()
            .all(|c| other.clauses.iter().any(|d| d.is_subset(c)))
    }

    /// Inserts a clause, maintaining the antichain invariant: the clause is
    /// dropped if some existing clause is a subset of it, and existing
    /// clauses that are supersets of it are removed (absorption `a ∨ (a∧b) = a`).
    fn insert_clause(clauses: &mut BTreeSet<Clause>, clause: Clause) {
        if clauses.iter().any(|c| c.is_subset(&clause)) {
            return;
        }
        clauses.retain(|c| !clause.is_subset(c));
        clauses.insert(clause);
    }
}

impl fmt::Display for PosBool {
    /// Prints `false`, `true`, or a DNF such as `(b1 ∧ b2) ∨ b3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_false() {
            return write!(f, "false");
        }
        if self.is_true() {
            return write!(f, "true");
        }
        let mut first_clause = true;
        for clause in &self.clauses {
            if !first_clause {
                write!(f, " ∨ ")?;
            }
            first_clause = false;
            if clause.len() > 1 {
                write!(f, "(")?;
            }
            let mut first_var = true;
            for v in clause {
                if !first_var {
                    write!(f, " ∧ ")?;
                }
                first_var = false;
                write!(f, "{v}")?;
            }
            if clause.len() > 1 {
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for PosBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Semiring for PosBool {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        PosBool::ff()
    }

    fn one() -> Self {
        PosBool::tt()
    }

    fn plus(&self, other: &Self) -> Self {
        // Disjunction: union of clause sets, re-normalized to an antichain.
        let mut clauses = BTreeSet::new();
        for c in self.clauses.iter().chain(other.clauses.iter()) {
            PosBool::insert_clause(&mut clauses, c.clone());
        }
        PosBool { clauses }
    }

    fn times(&self, other: &Self) -> Self {
        // Conjunction: pairwise unions of clauses, re-normalized.
        let mut clauses = BTreeSet::new();
        for c in &self.clauses {
            for d in &other.clauses {
                let merged: Clause = c.union(d).cloned().collect();
                PosBool::insert_clause(&mut clauses, merged);
            }
        }
        PosBool { clauses }
    }

    fn is_zero(&self) -> bool {
        self.is_false()
    }

    fn is_one(&self) -> bool {
        self.is_true()
    }
}

impl CommutativeSemiring for PosBool {}
impl PlusIdempotent for PosBool {}

impl NaturallyOrdered for PosBool {
    fn natural_leq(&self, other: &Self) -> bool {
        // For an idempotent +, a ≤ b ⇔ a + b = b ⇔ a ⇒ b.
        self.implies(other)
    }
}

impl OmegaContinuous for PosBool {
    fn star(&self) -> Self {
        // e* = true for every e (Section 5 of the paper).
        PosBool::tt()
    }

    fn convergence_bound(num_variables: usize) -> Option<usize> {
        // The lattice of monotone functions over n variables has finite
        // height ≤ number of antichains; a crude but sound bound on strictly
        // increasing chains of DNFs reachable by fixpoint iteration is
        // 2^n + 1 clauses additions; we expose n+2 iterations as the usual
        // practical bound is tiny. Callers needing exactness iterate to
        // convergence regardless; this is only a hint.
        Some(
            num_variables
                .saturating_mul(num_variables)
                .saturating_add(2),
        )
    }
}

impl DistributiveLattice for PosBool {}

/// Evaluates a `PosBool` expression into an arbitrary distributive-lattice
/// semiring via a valuation (the unique homomorphism extending it). With
/// `K = Bool` this decides truth under an assignment.
pub fn eval_posbool<K>(expr: &PosBool, valuation: &Valuation<K>) -> K
where
    K: DistributiveLattice,
{
    let mut acc = K::zero();
    for clause in expr.clauses() {
        let mut term = K::one();
        for v in clause {
            let value = valuation.get(v).cloned().unwrap_or_else(K::zero);
            term = term.times(&value);
        }
        acc = acc.plus(&term);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::properties::{check_distributive_lattice, check_semiring_laws};

    fn b(name: &str) -> PosBool {
        PosBool::var(name)
    }

    fn samples() -> Vec<PosBool> {
        vec![
            PosBool::ff(),
            PosBool::tt(),
            b("b1"),
            b("b2"),
            b("b3"),
            b("b1").times(&b("b2")),
            b("b1").plus(&b("b2").times(&b("b3"))),
            b("b2").plus(&b("b3")),
        ]
    }

    #[test]
    fn posbool_semiring_laws() {
        check_semiring_laws(&samples()).expect("PosBool semiring laws");
    }

    #[test]
    fn posbool_is_a_distributive_lattice() {
        check_distributive_lattice(&samples()).expect("PosBool lattice laws");
    }

    #[test]
    fn idempotence_and_absorption_simplify() {
        // (b1 ∧ b1) ∨ (b1 ∧ b1) = b1 — exactly the simplification from
        // Figure 2(a) to Figure 2(b) in the paper.
        let e = b("b1").times(&b("b1")).plus(&b("b1").times(&b("b1")));
        assert_eq!(e, b("b1"));

        // (b2 ∧ b2) ∨ (b2 ∧ b2) ∨ (b2 ∧ b3) = b2.
        let e = b("b2")
            .times(&b("b2"))
            .plus(&b("b2").times(&b("b2")))
            .plus(&b("b2").times(&b("b3")));
        assert_eq!(e, b("b2"));

        // (b3 ∧ b3) ∨ (b3 ∧ b3) ∨ (b2 ∧ b3) = b3.
        let e = b("b3")
            .times(&b("b3"))
            .plus(&b("b3").times(&b("b3")))
            .plus(&b("b2").times(&b("b3")));
        assert_eq!(e, b("b3"));
    }

    #[test]
    fn true_and_false_behave_as_units() {
        let x = b("x");
        assert_eq!(x.plus(&PosBool::ff()), x);
        assert_eq!(x.times(&PosBool::tt()), x);
        assert_eq!(x.times(&PosBool::ff()), PosBool::ff());
        assert_eq!(x.plus(&PosBool::tt()), PosBool::tt());
    }

    #[test]
    fn equality_is_logical_equivalence() {
        // x ∨ (x ∧ y) = x (absorption) and (x ∨ y) ∧ (x ∨ z) = x ∨ (y ∧ z)
        // (distributivity) hold as equalities of canonical forms.
        let (x, y, z) = (b("x"), b("y"), b("z"));
        assert_eq!(x.plus(&x.times(&y)), x);
        assert_eq!(x.plus(&y).times(&x.plus(&z)), x.plus(&y.times(&z)));
    }

    #[test]
    fn evaluate_agrees_with_truth_tables() {
        let e = b("x").times(&b("y")).plus(&b("z"));
        let mk = |x: bool, y: bool, z: bool| Valuation::from_pairs([("x", x), ("y", y), ("z", z)]);
        assert!(e.evaluate(&mk(true, true, false)));
        assert!(e.evaluate(&mk(false, false, true)));
        assert!(!e.evaluate(&mk(true, false, false)));
        assert!(!e.evaluate(&mk(false, true, false)));
    }

    #[test]
    fn exhaustive_equivalence_check_on_three_variables() {
        // Two syntactically different constructions of the same monotone
        // function agree on all 2³ assignments and have equal canonical form.
        let e1 = b("x").times(&b("y").plus(&b("z")));
        let e2 = b("x").times(&b("y")).plus(&b("x").times(&b("z")));
        assert_eq!(e1, e2);
        let vars = ["x", "y", "z"];
        for mask in 0u8..8 {
            let mut set = BTreeSet::new();
            for (i, v) in vars.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    set.insert(Variable::new(*v));
                }
            }
            assert_eq!(e1.evaluate_set(&set), e2.evaluate_set(&set));
        }
    }

    #[test]
    fn implication_and_natural_order() {
        let (x, y) = (b("x"), b("y"));
        let xy = x.times(&y);
        assert!(xy.implies(&x));
        assert!(!x.implies(&xy));
        assert!(x.natural_leq(&x.plus(&y)));
        assert!(xy.natural_leq(&x));
    }

    #[test]
    fn substitution_composes_expressions() {
        // Substituting x ↦ a∧b into x ∨ y gives (a∧b) ∨ y.
        let e = b("x").plus(&b("y"));
        let mut val = Valuation::new();
        val.assign(Variable::new("x"), b("a").times(&b("b")));
        let sub = e.substitute(&val);
        assert_eq!(sub, b("a").times(&b("b")).plus(&b("y")));
    }

    #[test]
    fn eval_into_bool_lattice() {
        let e = b("x").times(&b("y")).plus(&b("z"));
        let v = Valuation::from_pairs([
            ("x", Bool::from(true)),
            ("y", Bool::from(false)),
            ("z", Bool::from(true)),
        ]);
        assert_eq!(eval_posbool(&e, &v), Bool::from(true));
        let v2 = Valuation::from_pairs([
            ("x", Bool::from(true)),
            ("y", Bool::from(false)),
            ("z", Bool::from(false)),
        ]);
        assert_eq!(eval_posbool(&e, &v2), Bool::from(false));
    }

    #[test]
    fn from_dnf_normalizes() {
        let e = PosBool::from_dnf(vec![vec!["x", "y"], vec!["x"], vec!["x", "y", "z"]]);
        assert_eq!(e, b("x"));
    }

    #[test]
    fn star_is_true() {
        assert_eq!(b("x").star(), PosBool::tt());
        assert_eq!(PosBool::ff().star(), PosBool::tt());
    }
}

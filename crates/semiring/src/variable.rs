//! Provenance variables (tuple identifiers).
//!
//! The paper annotates base tuples with "their own ids" (`p`, `r`, `s` in
//! Figure 5, `m, n, p, r, s` in Figure 7); these ids are the indeterminates
//! of the provenance polynomials ℕ\[X\] and the boolean variables of
//! PosBool(B). [`Variable`] is a cheaply clonable, ordered, hashable symbol
//! used for both purposes.

use std::fmt;
use std::sync::Arc;

/// A provenance variable / tuple identifier.
///
/// Internally an `Arc<str>`, so cloning a variable (which happens a lot when
/// multiplying polynomials) is a reference-count bump rather than a string
/// copy. Ordering and equality are by name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(Arc<str>);

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Variable(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// A fresh variable of the form `prefix_i`, convenient for abstract
    /// tagging of whole relations (`R̄` in the paper).
    pub fn indexed(prefix: &str, i: usize) -> Self {
        Variable::new(format!("{prefix}_{i}"))
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

impl From<String> for Variable {
    fn from(s: String) -> Self {
        Variable::new(s)
    }
}

/// A valuation `v : X → K`, assigning a semiring value to each variable.
///
/// Proposition 4.2: for any commutative semiring K and valuation `v` there is
/// a unique homomorphism `Eval_v : ℕ\[X\] → K` extending `v`; Proposition 6.3
/// is the analogue for ℕ∞\[\[X\]\]. Valuations drive the factorization theorems
/// (4.3 and 6.4): evaluate the provenance annotation under `v` to recover the
/// K-annotation.
#[derive(Clone, Debug, Default)]
pub struct Valuation<K> {
    assignments: std::collections::BTreeMap<Variable, K>,
}

impl<K: Clone> Valuation<K> {
    /// The empty valuation.
    pub fn new() -> Self {
        Valuation {
            assignments: std::collections::BTreeMap::new(),
        }
    }

    /// Builds a valuation from `(variable, value)` pairs.
    pub fn from_pairs<I, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (V, K)>,
        V: Into<Variable>,
    {
        let mut v = Valuation::new();
        for (var, val) in pairs {
            v.assign(var.into(), val);
        }
        v
    }

    /// Assigns `value` to `var` (overwriting any previous assignment).
    pub fn assign(&mut self, var: Variable, value: K) -> &mut Self {
        self.assignments.insert(var, value);
        self
    }

    /// Looks up the value of `var`, if assigned.
    pub fn get(&self, var: &Variable) -> Option<&K> {
        self.assignments.get(var)
    }

    /// The number of assigned variables.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Iterates over the assignments in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Variable, &K)> {
        self.assignments.iter()
    }

    /// The set of assigned variables.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        self.assignments.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::Natural;

    #[test]
    fn variables_compare_by_name() {
        let p = Variable::new("p");
        let r = Variable::new("r");
        assert_ne!(p, r);
        assert_eq!(p, Variable::new("p"));
        assert!(p < r);
    }

    #[test]
    fn indexed_variables_have_stable_names() {
        assert_eq!(Variable::indexed("R", 3).name(), "R_3");
    }

    #[test]
    fn valuation_assignment_and_lookup() {
        let mut v: Valuation<Natural> = Valuation::new();
        assert!(v.is_empty());
        v.assign(Variable::new("p"), Natural::from(2u64));
        v.assign(Variable::new("r"), Natural::from(5u64));
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(&Variable::new("p")), Some(&Natural::from(2u64)));
        assert_eq!(v.get(&Variable::new("s")), None);
    }

    #[test]
    fn valuation_from_pairs_collects_all_pairs() {
        let v = Valuation::from_pairs([("p", Natural::from(2u64)), ("r", Natural::from(5u64))]);
        assert_eq!(v.variables().count(), 2);
        assert_eq!(v.get(&Variable::new("r")), Some(&Natural::from(5u64)));
    }
}

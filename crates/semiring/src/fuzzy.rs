//! The fuzzy semiring `([0,1], max, min, 0, 1)` and the Viterbi semiring
//! `([0,1], max, ·, 0, 1)`.
//!
//! The fuzzy semiring is listed in Section 5 of the paper as an ω-continuous
//! commutative semiring related to fuzzy set theory; it is also a
//! distributive lattice, so Theorem 9.2 (containment) and the Section 8
//! datalog evaluation apply to it. The Viterbi semiring is the standard
//! "best derivation probability" structure and is included as an extension
//! (it is ω-continuous but *not* a lattice because `·` is not idempotent).

use crate::traits::{
    CommutativeSemiring, DistributiveLattice, NaturallyOrdered, OmegaContinuous, PlusIdempotent,
    Semiring,
};
use std::fmt;

fn clamp_unit(x: f64) -> f64 {
    if x.is_nan() {
        panic!("fuzzy/Viterbi annotations must not be NaN");
    }
    x.clamp(0.0, 1.0)
}

/// An element of the fuzzy semiring: a membership degree in `[0, 1]`.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Fuzzy(f64);

impl Fuzzy {
    /// Creates a membership degree, clamping into `[0, 1]`. Panics on NaN.
    pub fn new(x: f64) -> Self {
        Fuzzy(clamp_unit(x))
    }

    /// The wrapped degree.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl From<f64> for Fuzzy {
    fn from(x: f64) -> Self {
        Fuzzy::new(x)
    }
}

impl fmt::Debug for Fuzzy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Fuzzy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Semiring for Fuzzy {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Fuzzy(0.0)
    }

    fn one() -> Self {
        Fuzzy(1.0)
    }

    fn plus(&self, other: &Self) -> Self {
        Fuzzy(self.0.max(other.0))
    }

    fn times(&self, other: &Self) -> Self {
        Fuzzy(self.0.min(other.0))
    }
}

impl CommutativeSemiring for Fuzzy {}
impl PlusIdempotent for Fuzzy {}

impl NaturallyOrdered for Fuzzy {
    fn natural_leq(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl OmegaContinuous for Fuzzy {
    fn star(&self) -> Self {
        // max(1, a, a∧a, …) = 1.
        Fuzzy(1.0)
    }
}

impl DistributiveLattice for Fuzzy {}

/// An element of the Viterbi semiring: the probability of the single best
/// derivation. `plus` is `max`, `times` is numeric multiplication.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Viterbi(f64);

impl Viterbi {
    /// Creates a probability, clamping into `[0, 1]`. Panics on NaN.
    pub fn new(x: f64) -> Self {
        Viterbi(clamp_unit(x))
    }

    /// The wrapped probability.
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl From<f64> for Viterbi {
    fn from(x: f64) -> Self {
        Viterbi::new(x)
    }
}

impl fmt::Debug for Viterbi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Semiring for Viterbi {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Viterbi(0.0)
    }

    fn one() -> Self {
        Viterbi(1.0)
    }

    fn plus(&self, other: &Self) -> Self {
        Viterbi(self.0.max(other.0))
    }

    fn times(&self, other: &Self) -> Self {
        Viterbi(self.0 * other.0)
    }
}

impl CommutativeSemiring for Viterbi {}
impl PlusIdempotent for Viterbi {}

impl NaturallyOrdered for Viterbi {
    fn natural_leq(&self, other: &Self) -> bool {
        self.0 <= other.0
    }
}

impl OmegaContinuous for Viterbi {
    fn star(&self) -> Self {
        // max(1, a, a², …) = 1 for a ∈ [0,1].
        Viterbi(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_distributive_lattice, check_semiring_laws};

    fn fuzzy_samples() -> Vec<Fuzzy> {
        vec![0.0, 0.1, 0.25, 0.5, 0.6, 0.75, 1.0]
            .into_iter()
            .map(Fuzzy::new)
            .collect()
    }

    fn viterbi_samples() -> Vec<Viterbi> {
        vec![0.0, 0.125, 0.25, 0.5, 1.0]
            .into_iter()
            .map(Viterbi::new)
            .collect()
    }

    #[test]
    fn fuzzy_semiring_laws() {
        check_semiring_laws(&fuzzy_samples()).expect("fuzzy semiring laws");
    }

    #[test]
    fn fuzzy_is_a_distributive_lattice() {
        check_distributive_lattice(&fuzzy_samples()).expect("fuzzy lattice laws");
    }

    #[test]
    fn viterbi_semiring_laws() {
        // Powers-of-two probabilities keep floating point arithmetic exact so
        // the associativity/distributivity checks hold with equality.
        check_semiring_laws(&viterbi_samples()).expect("Viterbi semiring laws");
    }

    #[test]
    fn fuzzy_plus_is_max_and_times_is_min() {
        let a = Fuzzy::new(0.3);
        let b = Fuzzy::new(0.8);
        assert_eq!(a.plus(&b), b);
        assert_eq!(a.times(&b), a);
    }

    #[test]
    fn viterbi_times_multiplies_probabilities() {
        let a = Viterbi::new(0.5);
        let b = Viterbi::new(0.25);
        assert_eq!(a.times(&b).value(), 0.125);
        assert_eq!(a.plus(&b), a);
    }

    #[test]
    fn construction_clamps_out_of_range_values() {
        assert_eq!(Fuzzy::new(1.5).value(), 1.0);
        assert_eq!(Fuzzy::new(-0.5).value(), 0.0);
        assert_eq!(Viterbi::new(2.0).value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = Fuzzy::new(f64::NAN);
    }

    #[test]
    fn stars_are_one() {
        assert_eq!(Fuzzy::new(0.4).star(), Fuzzy::one());
        assert_eq!(Viterbi::new(0.4).star(), Viterbi::one());
    }
}

//! The access-control (security clearance) semiring — an *extension* beyond
//! the paper, included because it is the textbook example of a finite
//! distributive lattice (in fact a finite total order) to which the paper's
//! Section 8 datalog evaluation and Theorem 9.2 containment transfer apply.
//!
//! Levels are ordered `Public < Confidential < Secret < TopSecret < Never`.
//! An annotation is the clearance required to see a tuple: joining data
//! requires the *maximum* of the clearances (`·` = max), while alternative
//! derivations allow the *minimum* (`+` = min). `0 = Never` (the tuple is
//! unavailable at any clearance), `1 = Public`.

use crate::traits::{
    CommutativeSemiring, DistributiveLattice, FiniteSemiring, NaturallyOrdered, OmegaContinuous,
    PlusIdempotent, Semiring,
};
use std::fmt;

/// A security clearance level, ordered from most accessible to least.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Clearance {
    /// Visible to everyone (the multiplicative unit).
    Public,
    /// Requires confidential clearance.
    Confidential,
    /// Requires secret clearance.
    Secret,
    /// Requires top-secret clearance.
    TopSecret,
    /// Never visible (the additive unit / absent tuple).
    Never,
}

impl Clearance {
    /// All levels, most accessible first.
    pub const ALL: [Clearance; 5] = [
        Clearance::Public,
        Clearance::Confidential,
        Clearance::Secret,
        Clearance::TopSecret,
        Clearance::Never,
    ];

    /// Can a reader with clearance `reader` see data annotated `self`?
    pub fn visible_to(self, reader: Clearance) -> bool {
        self != Clearance::Never && self <= reader
    }
}

impl fmt::Debug for Clearance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Clearance::Public => "Public",
            Clearance::Confidential => "Confidential",
            Clearance::Secret => "Secret",
            Clearance::TopSecret => "TopSecret",
            Clearance::Never => "Never",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Clearance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Semiring for Clearance {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Clearance::Never
    }

    fn one() -> Self {
        Clearance::Public
    }

    fn plus(&self, other: &Self) -> Self {
        // Alternative derivations: the more accessible clearance suffices.
        *std::cmp::min(self, other)
    }

    fn times(&self, other: &Self) -> Self {
        // Joint use: need the stricter clearance.
        *std::cmp::max(self, other)
    }
}

impl CommutativeSemiring for Clearance {}
impl PlusIdempotent for Clearance {}

impl NaturallyOrdered for Clearance {
    fn natural_leq(&self, other: &Self) -> bool {
        // a ≤ b ⇔ ∃x. min(a,x) = b ⇔ b ≤ a in the clearance order: more
        // restricted annotations are lower in the natural (information) order.
        other <= self
    }
}

impl OmegaContinuous for Clearance {
    fn star(&self) -> Self {
        // min(Public, a, …) = Public.
        Clearance::Public
    }

    fn convergence_bound(num_variables: usize) -> Option<usize> {
        Some(num_variables.saturating_mul(Clearance::ALL.len()) + 1)
    }
}

impl DistributiveLattice for Clearance {}

impl FiniteSemiring for Clearance {
    fn enumerate() -> Vec<Self> {
        Clearance::ALL.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_distributive_lattice, check_semiring_laws};

    #[test]
    fn clearance_semiring_laws() {
        check_semiring_laws(&Clearance::enumerate()).expect("clearance semiring laws");
    }

    #[test]
    fn clearance_lattice_laws() {
        check_distributive_lattice(&Clearance::enumerate()).expect("clearance lattice laws");
    }

    #[test]
    fn join_requires_stricter_level() {
        assert_eq!(
            Clearance::Confidential.times(&Clearance::Secret),
            Clearance::Secret
        );
        assert_eq!(
            Clearance::Public.times(&Clearance::Public),
            Clearance::Public
        );
        assert_eq!(
            Clearance::TopSecret.times(&Clearance::Never),
            Clearance::Never
        );
    }

    #[test]
    fn union_takes_most_accessible_derivation() {
        assert_eq!(
            Clearance::Confidential.plus(&Clearance::Secret),
            Clearance::Confidential
        );
        assert_eq!(Clearance::Never.plus(&Clearance::Secret), Clearance::Secret);
    }

    #[test]
    fn visibility_checks() {
        assert!(Clearance::Public.visible_to(Clearance::Public));
        assert!(Clearance::Confidential.visible_to(Clearance::Secret));
        assert!(!Clearance::Secret.visible_to(Clearance::Confidential));
        assert!(!Clearance::Never.visible_to(Clearance::TopSecret));
    }

    #[test]
    fn natural_order_places_never_at_bottom() {
        assert!(Clearance::Never.natural_leq(&Clearance::TopSecret));
        assert!(Clearance::TopSecret.natural_leq(&Clearance::Public));
        assert!(!Clearance::Public.natural_leq(&Clearance::Secret));
    }
}

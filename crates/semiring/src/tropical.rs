//! The tropical semiring `(ℕ∞, min, +, ∞, 0)` (Section 5 of the paper).
//!
//! Under the tropical semiring, RA⁺ / datalog evaluation computes minimum
//! costs: the annotation of an output tuple is the cost of its cheapest
//! derivation, where the cost of a derivation is the *sum* of the costs of
//! the input tuples it uses. Datalog transitive closure over the tropical
//! semiring is the all-pairs shortest path problem.

use crate::ninfinity::NatInf;
use crate::traits::{
    CommutativeSemiring, NaturallyOrdered, OmegaContinuous, PlusIdempotent, Semiring,
};
use std::fmt;

/// An element of the tropical semiring: a cost in ℕ∞.
///
/// * `plus` is `min` (choosing the cheaper of two alternative derivations),
/// * `times` is numeric `+` (accumulating cost along a joint derivation),
/// * `zero` is `∞` (an impossible derivation),
/// * `one` is `0` (a free derivation).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tropical(pub NatInf);

impl Tropical {
    /// A finite cost.
    pub const fn cost(n: u64) -> Self {
        Tropical(NatInf::Fin(n))
    }

    /// The impossible (infinite) cost — the additive unit.
    pub const fn unreachable() -> Self {
        Tropical(NatInf::Inf)
    }

    /// The underlying ℕ∞ value.
    pub const fn value(&self) -> NatInf {
        self.0
    }
}

impl From<u64> for Tropical {
    fn from(n: u64) -> Self {
        Tropical::cost(n)
    }
}

impl fmt::Debug for Tropical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cost({:?})", self.0)
    }
}

impl fmt::Display for Tropical {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Semiring for Tropical {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Tropical(NatInf::Inf)
    }

    fn one() -> Self {
        Tropical(NatInf::Fin(0))
    }

    fn plus(&self, other: &Self) -> Self {
        Tropical(std::cmp::min(self.0, other.0))
    }

    fn times(&self, other: &Self) -> Self {
        // Numeric addition on ℕ∞ (∞ + n = ∞).
        match (self.0, other.0) {
            (NatInf::Fin(a), NatInf::Fin(b)) => Tropical(NatInf::Fin(a.saturating_add(b))),
            _ => Tropical(NatInf::Inf),
        }
    }
}

impl CommutativeSemiring for Tropical {}
impl PlusIdempotent for Tropical {}

impl NaturallyOrdered for Tropical {
    fn natural_leq(&self, other: &Self) -> bool {
        // a ≤ b ⇔ ∃x. min(a, x) = b ⇔ b ≤ a numerically: cheaper costs are
        // *larger* in the natural order of the tropical semiring.
        other.0 <= self.0
    }
}

impl OmegaContinuous for Tropical {
    fn star(&self) -> Self {
        // a* = min(0, a, a+a, …) = 0 = one, since all costs are ≥ 0.
        Tropical::one()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::check_semiring_laws;

    fn samples() -> Vec<Tropical> {
        vec![
            Tropical::cost(0),
            Tropical::cost(1),
            Tropical::cost(2),
            Tropical::cost(7),
            Tropical::unreachable(),
        ]
    }

    #[test]
    fn tropical_semiring_laws() {
        check_semiring_laws(&samples()).expect("tropical semiring laws");
    }

    #[test]
    fn plus_picks_minimum_cost() {
        assert_eq!(
            Tropical::cost(3).plus(&Tropical::cost(5)),
            Tropical::cost(3)
        );
        assert_eq!(
            Tropical::cost(3).plus(&Tropical::unreachable()),
            Tropical::cost(3)
        );
    }

    #[test]
    fn times_adds_costs() {
        assert_eq!(
            Tropical::cost(3).times(&Tropical::cost(5)),
            Tropical::cost(8)
        );
        assert_eq!(
            Tropical::cost(3).times(&Tropical::unreachable()),
            Tropical::unreachable()
        );
    }

    #[test]
    fn units_are_infinity_and_zero_cost() {
        assert_eq!(Tropical::zero(), Tropical::unreachable());
        assert_eq!(Tropical::one(), Tropical::cost(0));
        // 0 annihilates: joining with an unreachable tuple is unreachable.
        assert_eq!(Tropical::zero().times(&Tropical::cost(9)), Tropical::zero());
    }

    #[test]
    fn natural_order_is_reverse_numeric_order() {
        // zero (∞) is the least element of the natural order.
        assert!(Tropical::zero().natural_leq(&Tropical::cost(10)));
        assert!(Tropical::cost(10).natural_leq(&Tropical::cost(2)));
        assert!(!Tropical::cost(2).natural_leq(&Tropical::cost(10)));
    }

    #[test]
    fn star_is_the_unit() {
        assert_eq!(Tropical::cost(5).star(), Tropical::one());
        assert_eq!(Tropical::unreachable().star(), Tropical::one());
    }
}

//! Formal power series ℕ∞\[\[X\]\] — the datalog provenance semiring
//! (Definition 6.1 of the paper).
//!
//! A formal power series assigns a coefficient in ℕ∞ to *every* monomial in
//! `X⊕`, so it is in general an infinite object. This module provides the
//! finite representations the paper itself works with:
//!
//! * [`TruncatedSeries`] — the series restricted to monomials of total degree
//!   `≤ max_degree`, with exact ℕ∞ coefficients. Truncated series are closed
//!   under `+`, `·`, Kleene star, and least-fixpoint computation of algebraic
//!   systems, and the truncation of the true solution equals the solution of
//!   the truncated system (all operations are degree-monotone), so any
//!   individual coefficient of the paper's provenance series can be computed
//!   exactly by choosing `max_degree` ≥ the monomial's degree.
//! * The *algebraic systems* that generate the series (Definition 5.5) live
//!   in `provsem-datalog::algebraic_system`; the All-Trees and
//!   Monomial-Coefficient algorithms (Figures 8–9) provide the
//!   polynomial-or-∞ classification and individual coefficients without any
//!   truncation.

use crate::monomial::Monomial;
use crate::natural::Natural;
use crate::ninfinity::NatInf;
use crate::polynomial::Polynomial;
use crate::traits::{CommutativeSemiring, Semiring};
use crate::variable::{Valuation, Variable};
use std::collections::BTreeMap;
use std::fmt;

/// A formal power series truncated at a maximum total degree.
///
/// Coefficients of monomials with degree `> max_degree` are simply not
/// represented (they are unknown, not zero). Two truncated series are
/// comparable only at the same `max_degree`.
#[derive(Clone, PartialEq, Eq)]
pub struct TruncatedSeries {
    max_degree: u32,
    terms: BTreeMap<Monomial, NatInf>,
}

impl TruncatedSeries {
    /// The zero series at the given truncation degree.
    pub fn zero(max_degree: u32) -> Self {
        TruncatedSeries {
            max_degree,
            terms: BTreeMap::new(),
        }
    }

    /// The series `1` (coefficient 1 for ε) at the given truncation degree.
    pub fn one(max_degree: u32) -> Self {
        let mut s = TruncatedSeries::zero(max_degree);
        s.add_term(Monomial::unit(), NatInf::Fin(1));
        s
    }

    /// The series consisting of a single variable.
    pub fn var(v: impl Into<Variable>, max_degree: u32) -> Self {
        let mut s = TruncatedSeries::zero(max_degree);
        s.add_term(Monomial::var(v), NatInf::Fin(1));
        s
    }

    /// Converts a polynomial with ℕ∞ coefficients into a truncated series.
    pub fn from_polynomial(p: &Polynomial<NatInf>, max_degree: u32) -> Self {
        let mut s = TruncatedSeries::zero(max_degree);
        for (m, c) in p.terms() {
            s.add_term(m.clone(), *c);
        }
        s
    }

    /// Converts an ℕ\[X\] provenance polynomial into a truncated series (the
    /// embedding of algebra provenance into datalog provenance described in
    /// Section 6).
    pub fn from_provenance_polynomial(p: &Polynomial<Natural>, max_degree: u32) -> Self {
        let mut s = TruncatedSeries::zero(max_degree);
        for (m, c) in p.terms() {
            s.add_term(m.clone(), NatInf::Fin(c.value()));
        }
        s
    }

    /// The truncation degree.
    pub fn max_degree(&self) -> u32 {
        self.max_degree
    }

    /// Adds `coefficient · monomial`, ignoring monomials beyond the
    /// truncation degree and dropping zero coefficients.
    pub fn add_term(&mut self, monomial: Monomial, coefficient: NatInf) {
        if coefficient.is_zero() || monomial.degree() > self.max_degree {
            return;
        }
        let entry = self.terms.entry(monomial).or_insert(NatInf::Fin(0));
        *entry = entry.plus(&coefficient);
        if entry.is_zero() {
            // plus on ℕ∞ never produces 0 from a non-zero operand, but keep
            // the invariant explicit for robustness.
            self.terms.retain(|_, c| !c.is_zero());
        }
    }

    /// The coefficient of `monomial`. Zero for represented-but-absent
    /// monomials of degree ≤ `max_degree`; `None` for monomials beyond the
    /// truncation degree (unknown).
    pub fn coefficient(&self, monomial: &Monomial) -> Option<NatInf> {
        if monomial.degree() > self.max_degree {
            return None;
        }
        Some(self.terms.get(monomial).copied().unwrap_or(NatInf::Fin(0)))
    }

    /// Iterates over the non-zero terms in monomial order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, NatInf)> {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// Number of non-zero represented terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Is this the zero series (within the represented degrees)?
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Pointwise sum.
    pub fn plus(&self, other: &TruncatedSeries) -> TruncatedSeries {
        let max_degree = self.max_degree.min(other.max_degree);
        let mut result = TruncatedSeries::zero(max_degree);
        for (m, c) in self.terms.iter().chain(other.terms.iter()) {
            result.add_term(m.clone(), *c);
        }
        result
    }

    /// Cauchy product, truncated: `(S₁·S₂)(µ) = Σ_{µ₁µ₂=µ} S₁(µ₁)·S₂(µ₂)`
    /// (the formula displayed in Section 6 of the paper).
    pub fn times(&self, other: &TruncatedSeries) -> TruncatedSeries {
        let max_degree = self.max_degree.min(other.max_degree);
        let mut result = TruncatedSeries::zero(max_degree);
        for (m1, c1) in &self.terms {
            if m1.degree() > max_degree {
                continue;
            }
            for (m2, c2) in &other.terms {
                if m1.degree() + m2.degree() > max_degree {
                    continue;
                }
                result.add_term(m1.multiply(m2), c1.times(c2));
            }
        }
        result
    }

    /// Kleene star `S* = 1 + S + S² + ⋯`, truncated.
    ///
    /// If the series has a non-zero constant term `c`, the constant term of
    /// the star is `c* ` in ℕ∞ (∞ unless `c = 0`), and every other
    /// coefficient reachable through that constant also becomes ∞; this is
    /// handled by iterating to a fixed point of `T(X) = 1 + S·X`, which
    /// converges in at most `max_degree + 2` iterations for series with zero
    /// constant term and is detected as divergent otherwise.
    pub fn star(&self) -> TruncatedSeries {
        let constant = self
            .coefficient(&Monomial::unit())
            .unwrap_or(NatInf::Fin(0));
        if !constant.is_zero() {
            // Split S = c + S₀ with S₀ the positive-degree part. Then
            // S* = (c + S₀)* = c*·(S₀·c*)*. With c ≥ 1 in ℕ∞, c* = ∞, so
            // every monomial derivable from S₀* gets coefficient ∞ and the
            // constant term is ∞.
            let mut positive = self.clone();
            positive.terms.remove(&Monomial::unit());
            let base = positive.star();
            let mut result = TruncatedSeries::zero(self.max_degree);
            for (m, c) in base.terms() {
                if !c.is_zero() {
                    result.add_term(m.clone(), NatInf::Inf);
                }
            }
            result.add_term(Monomial::unit(), NatInf::Inf);
            return result;
        }
        // Zero constant term: the star is a finite sum of powers up to
        // max_degree because every factor raises the degree by ≥ 1.
        let mut result = TruncatedSeries::one(self.max_degree);
        let mut power = TruncatedSeries::one(self.max_degree);
        for _ in 0..self.max_degree {
            power = power.times(self);
            if power.is_zero() {
                break;
            }
            result = result.plus(&power);
        }
        result
    }

    /// Evaluates the (truncated) series into an ω-continuous-like target by
    /// substituting the valuation and summing the represented terms. Exact
    /// when the series is actually a polynomial of degree ≤ `max_degree`.
    pub fn evaluate_truncated<K: CommutativeSemiring>(
        &self,
        valuation: &Valuation<K>,
        infinity: impl Fn() -> K,
    ) -> K {
        let mut acc = K::zero();
        for (monomial, coeff) in &self.terms {
            let mut term = match coeff {
                NatInf::Fin(n) => K::one().repeat(*n),
                NatInf::Inf => infinity(),
            };
            if term.is_zero() {
                continue;
            }
            for (var, exp) in monomial.powers() {
                let value = valuation.get(var).cloned().unwrap_or_else(K::zero);
                term.times_assign(&value.pow(exp));
            }
            acc.plus_assign(&term);
        }
        acc
    }
}

impl fmt::Debug for TruncatedSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            write!(f, "0")?;
        } else {
            let mut first = true;
            for (m, c) in &self.terms {
                if !first {
                    write!(f, " + ")?;
                }
                first = false;
                if m.is_unit() {
                    write!(f, "{c:?}")?;
                } else if c.is_one() {
                    write!(f, "{m:?}")?;
                } else {
                    write!(f, "{c:?}{m:?}")?;
                }
            }
        }
        write!(f, " + O(deg>{})", self.max_degree)
    }
}

impl fmt::Display for TruncatedSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Solves the one-variable algebraic equation `x = rhs(x)` over truncated
/// series by least-fixpoint iteration from 0, where `rhs` is given as a
/// function of the current approximation. Converges because coefficients of
/// each degree stabilize (or are detected as ∞ by saturation) and only
/// degrees up to the truncation are tracked.
///
/// The classic example from Section 6: `v = s + v²` has solution
/// `v = s + s² + 2s³ + 5s⁴ + 14s⁵ + ⋯` (Catalan numbers).
pub fn solve_univariate<F>(max_degree: u32, rhs: F) -> TruncatedSeries
where
    F: Fn(&TruncatedSeries) -> TruncatedSeries,
{
    let mut current = TruncatedSeries::zero(max_degree);
    // Degree-d coefficients stabilize after at most d+1 iterations for
    // proper systems; iterate a generous bound and stop early on fixpoint.
    let bound = (max_degree as usize + 2) * 2;
    for _ in 0..bound {
        let next = rhs(&current);
        if next == current {
            break;
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s_var(max_degree: u32) -> TruncatedSeries {
        TruncatedSeries::var("s", max_degree)
    }

    #[test]
    fn addition_and_multiplication_of_series() {
        let s = s_var(4);
        let one = TruncatedSeries::one(4);
        let sum = one.plus(&s);
        assert_eq!(sum.coefficient(&Monomial::unit()), Some(NatInf::Fin(1)));
        assert_eq!(sum.coefficient(&Monomial::var("s")), Some(NatInf::Fin(1)));
        let sq = sum.times(&sum);
        // (1 + s)² = 1 + 2s + s².
        assert_eq!(sq.coefficient(&Monomial::unit()), Some(NatInf::Fin(1)));
        assert_eq!(sq.coefficient(&Monomial::var("s")), Some(NatInf::Fin(2)));
        assert_eq!(
            sq.coefficient(&Monomial::from_powers([("s", 2u32)])),
            Some(NatInf::Fin(1))
        );
    }

    #[test]
    fn truncation_drops_high_degrees() {
        let s = s_var(2);
        let cube = s.times(&s).times(&s);
        assert!(cube.is_zero());
        assert_eq!(
            s.times(&s)
                .coefficient(&Monomial::from_powers([("s", 2u32)])),
            Some(NatInf::Fin(1))
        );
        assert_eq!(
            s.coefficient(&Monomial::from_powers([("s", 3u32)])),
            None,
            "coefficients beyond the truncation degree are unknown, not zero"
        );
    }

    #[test]
    fn star_of_a_variable_is_geometric_series() {
        let s = s_var(5);
        let star = s.star();
        for d in 0..=5u32 {
            assert_eq!(
                star.coefficient(&Monomial::from_powers([("s", d)])),
                Some(NatInf::Fin(1)),
                "s* should have coefficient 1 at every power of s"
            );
        }
    }

    #[test]
    fn star_with_nonzero_constant_term_is_infinite() {
        // 1* = ∞ in ℕ∞ (Section 5); as a series, (1 + s)* has every
        // coefficient ∞.
        let one_plus_s = TruncatedSeries::one(3).plus(&s_var(3));
        let star = one_plus_s.star();
        assert_eq!(star.coefficient(&Monomial::unit()), Some(NatInf::Inf));
        assert_eq!(star.coefficient(&Monomial::var("s")), Some(NatInf::Inf));
    }

    #[test]
    fn catalan_series_from_v_equals_s_plus_v_squared() {
        // Figure 7 / footnote 6 of the paper: the v component of the system
        // solves v = s + v², whose series is s + s² + 2s³ + 5s⁴ + 14s⁵ + ⋯
        let solution = solve_univariate(6, |v| s_var(6).plus(&v.times(v)));
        let expected = [1u64, 1, 2, 5, 14, 42];
        for (i, coeff) in expected.iter().enumerate() {
            let degree = (i + 1) as u32;
            assert_eq!(
                solution.coefficient(&Monomial::from_powers([("s", degree)])),
                Some(NatInf::Fin(*coeff)),
                "coefficient of s^{degree}"
            );
        }
    }

    #[test]
    fn from_provenance_polynomial_embeds_algebra_provenance() {
        // 2r² + rs as a power series has the same coefficients (Prop 6.2's
        // embedding of ℕ[X] into ℕ∞[[X]]).
        let p: Polynomial<Natural> = Polynomial::from_terms([
            (Monomial::from_powers([("r", 2u32)]), Natural::from(2u64)),
            (Monomial::from_bag(["r", "s"]), Natural::from(1u64)),
        ]);
        let s = TruncatedSeries::from_provenance_polynomial(&p, 4);
        assert_eq!(
            s.coefficient(&Monomial::from_powers([("r", 2u32)])),
            Some(NatInf::Fin(2))
        );
        assert_eq!(
            s.coefficient(&Monomial::from_bag(["r", "s"])),
            Some(NatInf::Fin(1))
        );
        assert_eq!(s.coefficient(&Monomial::var("r")), Some(NatInf::Fin(0)));
    }

    #[test]
    fn evaluate_truncated_into_ninfinity() {
        // Evaluate s + s² at s = 3: 3 + 9 = 12.
        let series = s_var(3).plus(&s_var(3).times(&s_var(3)));
        let v = Valuation::from_pairs([("s", NatInf::Fin(3))]);
        assert_eq!(
            series.evaluate_truncated(&v, || NatInf::Inf),
            NatInf::Fin(12)
        );
    }

    #[test]
    fn zero_and_one_series() {
        let z = TruncatedSeries::zero(3);
        let o = TruncatedSeries::one(3);
        assert!(z.is_zero());
        assert!(!o.is_zero());
        assert_eq!(o.coefficient(&Monomial::unit()), Some(NatInf::Fin(1)));
        assert_eq!(z.plus(&o), o);
        assert_eq!(o.times(&o), o);
    }
}

//! Rings of annotations — ℤ-relations and difference pairs.
//!
//! The paper's conclusion singles out *difference* as the natural next
//! operation beyond RA⁺, and Green, Ives & Tannen's follow-up work on
//! reconcilable differences develops it: moving from commutative semirings
//! to commutative **rings** makes deletions first-class, because a deletion
//! is just an insertion with an additively inverted annotation. The
//! incremental view maintenance machinery in `provsem-core` and
//! `provsem-datalog` is built on the structures defined here:
//!
//! * [`Ring`] — the extension of [`Semiring`] with additive inverses;
//! * [`Integers`] — `(ℤ, +, ·, 0, 1)`, the ring of signed multiplicities
//!   ("ℤ-relations");
//! * [`ZPolynomial`](crate::polynomial::ZPolynomial) — ℤ\[X\], provenance
//!   polynomials with integer coefficients (defined in
//!   [`crate::polynomial`]);
//! * [`DiffPair`] — the Grothendieck-style difference ring `K² / ~` that
//!   lifts any semiring with cancellative addition to a ring.
//!
//! ## When is the lifting faithful?
//!
//! The embedding `k ↦ (k, 0)` of `K` into [`DiffPair<K>`] is injective
//! exactly when `+` in `K` is *cancellative* (`a + c = b + c ⇒ a = b`);
//! the same property is what makes the difference-pair equality
//! `(a, b) ~ (c, d) ⇔ a + d = c + b` transitive. The marker trait
//! [`CancellativePlus`] records which semirings qualify: ℕ and ℕ\[X\] do,
//! while idempotent structures (𝔹, PosBool, Why, Tropical) and saturating
//! ones (ℕ∞) do not — for those, deletions are genuinely lossy and no ring
//! of differences exists.

use crate::natural::Natural;
use crate::traits::{
    CommutativeSemiring, NaturallyOrdered, Portable, Semiring, SemiringHomomorphism,
};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A (commutative) ring: a [`Semiring`] whose addition has inverses.
///
/// Law (checked by [`crate::properties::check_ring_laws`]):
/// `a + (-a) = 0` for every `a`. Together with the semiring laws this gives
/// the usual consequences `-(-a) = a`, `-(a + b) = (-a) + (-b)` and
/// `(-a)·b = -(a·b)`, all of which the law harness also verifies.
pub trait Ring: Semiring {
    /// The additive inverse `-a`.
    fn neg(&self) -> Self;

    /// Difference `a - b = a + (-b)`.
    fn minus(&self, other: &Self) -> Self {
        self.plus(&other.neg())
    }
}

/// Marker: addition in this semiring is cancellative
/// (`a + c = b + c ⇒ a = b`).
///
/// This is the precise condition under which [`DiffPair<K>`]'s equality is
/// transitive and the embedding `K → DiffPair<K>` is injective, i.e. under
/// which `K` embeds into a ring of differences. ℕ and polynomial semirings
/// over cancellative coefficients qualify; anything idempotent (`a + a = a`
/// with `a ≠ 0`) or saturating does not.
pub trait CancellativePlus: Semiring {}

impl CancellativePlus for Natural {}

/// An element of `(ℤ, +, ·, 0, 1)` — a signed tuple multiplicity.
///
/// ℤ-relations are the annotation structure of incremental view
/// maintenance: an insert-batch tuple carries a positive count, a
/// delete-batch tuple a negative one, and a maintained bag is exact as long
/// as the final counts are the true (non-negative) multiplicities.
/// Arithmetic is overflow-checked and panics, mirroring [`Natural`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Integers(pub i64);

impl Integers {
    /// Builds a signed multiplicity from an `i64`.
    pub const fn new(n: i64) -> Self {
        Integers(n)
    }

    /// The wrapped value.
    pub const fn value(self) -> i64 {
        self.0
    }

    /// Overflow-checked addition.
    pub fn checked_plus(self, other: Self) -> Option<Self> {
        self.0.checked_add(other.0).map(Integers)
    }

    /// Overflow-checked multiplication.
    pub fn checked_times(self, other: Self) -> Option<Self> {
        self.0.checked_mul(other.0).map(Integers)
    }
}

impl From<i64> for Integers {
    fn from(n: i64) -> Self {
        Integers(n)
    }
}

impl From<i32> for Integers {
    fn from(n: i32) -> Self {
        Integers(n as i64)
    }
}

impl From<Natural> for Integers {
    fn from(n: Natural) -> Self {
        Integers(i64::try_from(n.value()).expect("multiplicity too large for ℤ (i64)"))
    }
}

impl From<Integers> for i64 {
    fn from(n: Integers) -> Self {
        n.0
    }
}

impl fmt::Debug for Integers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Integers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Integers {
    type Output = Integers;
    fn add(self, rhs: Integers) -> Integers {
        Integers(self.0 + rhs.0)
    }
}

impl Mul for Integers {
    type Output = Integers;
    fn mul(self, rhs: Integers) -> Integers {
        Integers(self.0 * rhs.0)
    }
}

impl Sub for Integers {
    type Output = Integers;
    fn sub(self, rhs: Integers) -> Integers {
        Integers(self.0 - rhs.0)
    }
}

impl Neg for Integers {
    type Output = Integers;
    fn neg(self) -> Integers {
        Integers(-self.0)
    }
}

impl Semiring for Integers {
    // Plain `Send` data: batches cross threads as-is (parallel engines).
    crate::traits::portable_by_send!();

    fn zero() -> Self {
        Integers(0)
    }

    fn one() -> Self {
        Integers(1)
    }

    fn plus(&self, other: &Self) -> Self {
        Integers(
            self.0
                .checked_add(other.0)
                .expect("signed multiplicity overflow in ℤ"),
        )
    }

    fn times(&self, other: &Self) -> Self {
        Integers(
            self.0
                .checked_mul(other.0)
                .expect("signed multiplicity overflow in ℤ"),
        )
    }

    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    fn is_one(&self) -> bool {
        self.0 == 1
    }
}

impl CommutativeSemiring for Integers {}
impl CancellativePlus for Integers {}

impl Ring for Integers {
    fn neg(&self) -> Self {
        Integers(
            self.0
                .checked_neg()
                .expect("signed multiplicity overflow in ℤ"),
        )
    }
}

/// The inclusion ℕ → ℤ, a semiring homomorphism. Composing a bag database
/// into the IVM pipeline goes through this map.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaturalToIntegers;

impl SemiringHomomorphism<Natural, Integers> for NaturalToIntegers {
    fn apply(&self, a: &Natural) -> Integers {
        Integers::from(*a)
    }
}

/// A formal difference `pos - neg` of two `K` annotations — the
/// Grothendieck-style lifting of a cancellative semiring to a ring.
///
/// Two pairs are equal when their cross sums agree:
/// `(a, b) = (c, d) ⇔ a + d = c + b` in `K`. For cancellative `+` this is
/// an equivalence relation and a congruence for the ring operations
///
/// ```text
/// (a, b) + (c, d) = (a + c, b + d)
/// (a, b) · (c, d) = (a·c + b·d, a·d + b·c)
///        -(a, b)  = (b, a)
/// ```
///
/// so `DiffPair<K>` is a commutative ring and `k ↦ (k, 0)`
/// ([`DiffPair::from_positive`], packaged as the homomorphism
/// [`LiftToDiff`]) embeds `K` into it. `DiffPair<Natural>` is isomorphic to
/// ℤ; `DiffPair<ProvenancePolynomial>` is ℤ\[X\] presented as pairs. The
/// representation is not normalized — `(5, 3)` and `(2, 0)` are equal but
/// distinct pairs — which is exactly why the [`PartialEq`] impl is the
/// quotient relation rather than the derived one.
#[derive(Clone)]
pub struct DiffPair<K> {
    pos: K,
    neg: K,
}

// Equality is the quotient relation below; it is a genuine equivalence
// (transitivity is exactly cancellativity of +), so `Eq` is sound. No
// `Hash`: equal pairs may have different representations.
impl<K: Semiring + CancellativePlus> Eq for DiffPair<K> {}

impl<K: Semiring + CancellativePlus> DiffPair<K> {
    /// Builds the difference `pos - neg`.
    pub fn new(pos: K, neg: K) -> Self {
        DiffPair { pos, neg }
    }

    /// Embeds `k` as the positive difference `k - 0`.
    pub fn from_positive(k: K) -> Self {
        DiffPair {
            pos: k,
            neg: K::zero(),
        }
    }

    /// Embeds `k` as the negative difference `0 - k`.
    pub fn from_negative(k: K) -> Self {
        DiffPair {
            pos: K::zero(),
            neg: k,
        }
    }

    /// The positive component of this (unnormalized) pair.
    pub fn positive(&self) -> &K {
        &self.pos
    }

    /// The negative component of this (unnormalized) pair.
    pub fn negative(&self) -> &K {
        &self.neg
    }

    /// If the pair is equal to an embedded `K` element from the sample-free
    /// fragment — i.e. if `pos = neg + k` for the *naturally ordered* case —
    /// recovers that element. Only available when `K` reports its natural
    /// order; returns `None` when the difference is "properly negative".
    pub fn to_semiring(&self) -> Option<K>
    where
        K: NaturallyOrdered + Monus,
    {
        self.neg
            .natural_leq(&self.pos)
            .then(|| self.pos.monus(&self.neg))
    }
}

/// Truncated subtraction for naturally ordered semirings: when `b ≤ a` in
/// the natural order, `a ∸ b` is the witness of that inequality. Used by
/// [`DiffPair::to_semiring`] to normalize a non-negative difference back
/// into `K`.
pub trait Monus: Semiring {
    /// `a ∸ b`, the truncated difference.
    fn monus(&self, other: &Self) -> Self;
}

impl Monus for Natural {
    fn monus(&self, other: &Self) -> Self {
        Natural::monus(*self, *other)
    }
}

impl<K: Semiring + CancellativePlus> PartialEq for DiffPair<K> {
    fn eq(&self, other: &Self) -> bool {
        // The quotient relation: a - b = c - d ⇔ a + d = c + b. Transitive
        // because + in K is cancellative (the CancellativePlus bound).
        self.pos.plus(&other.neg) == other.pos.plus(&self.neg)
    }
}

impl<K: Semiring + CancellativePlus> fmt::Debug for DiffPair<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?} - {:?})", self.pos, self.neg)
    }
}

impl<K: Semiring + CancellativePlus> Semiring for DiffPair<K> {
    fn zero() -> Self {
        DiffPair {
            pos: K::zero(),
            neg: K::zero(),
        }
    }

    fn one() -> Self {
        DiffPair {
            pos: K::one(),
            neg: K::zero(),
        }
    }

    fn plus(&self, other: &Self) -> Self {
        DiffPair {
            pos: self.pos.plus(&other.pos),
            neg: self.neg.plus(&other.neg),
        }
    }

    fn times(&self, other: &Self) -> Self {
        // (a - b)(c - d) = (ac + bd) - (ad + bc).
        DiffPair {
            pos: self.pos.times(&other.pos).plus(&self.neg.times(&other.neg)),
            neg: self.pos.times(&other.neg).plus(&self.neg.times(&other.pos)),
        }
    }

    fn is_zero(&self) -> bool {
        self.pos == self.neg
    }

    // Cross-thread transport: a pair batch is portable exactly when K is —
    // seal the two component columns as K batches and zip them back up.
    fn is_portable() -> bool {
        K::is_portable()
    }

    fn to_portable(batch: Vec<Self>) -> Portable {
        let (pos, neg): (Vec<K>, Vec<K>) = batch.into_iter().map(|d| (d.pos, d.neg)).unzip();
        Portable::new((K::to_portable(pos), K::to_portable(neg)))
    }

    fn from_portable(token: Portable) -> Vec<Self> {
        let (pos, neg) = token.unwrap::<(Portable, Portable)>();
        K::from_portable(pos)
            .into_iter()
            .zip(K::from_portable(neg))
            .map(|(pos, neg)| DiffPair { pos, neg })
            .collect()
    }
}

impl<K: CommutativeSemiring + CancellativePlus> CommutativeSemiring for DiffPair<K> {}

impl<K: Semiring + CancellativePlus> Ring for DiffPair<K> {
    fn neg(&self) -> Self {
        DiffPair {
            pos: self.neg.clone(),
            neg: self.pos.clone(),
        }
    }
}

/// The canonical lifting homomorphism `K → DiffPair<K>`, `k ↦ k - 0`.
///
/// Injective (because `+` in `K` is cancellative), so a `K`-database can be
/// moved into the difference ring, maintained incrementally under
/// insert/delete batches there, and read back via
/// [`DiffPair::to_semiring`] whenever the net annotations are non-negative.
#[derive(Clone, Copy, Debug, Default)]
pub struct LiftToDiff;

impl<K: Semiring + CancellativePlus> SemiringHomomorphism<K, DiffPair<K>> for LiftToDiff {
    fn apply(&self, a: &K) -> DiffPair<K> {
        DiffPair::from_positive(a.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{check_ring_laws, check_semiring_laws};

    #[test]
    fn integers_are_a_ring() {
        let samples: Vec<Integers> = vec![-7, -2, -1, 0, 1, 2, 3, 10]
            .into_iter()
            .map(Integers::from)
            .collect();
        check_semiring_laws(&samples).unwrap();
        check_ring_laws(&samples).unwrap();
    }

    #[test]
    fn diffpair_equality_is_the_quotient_relation() {
        let a = DiffPair::new(Natural::from(5u64), Natural::from(3u64));
        let b = DiffPair::new(Natural::from(2u64), Natural::from(0u64));
        assert_eq!(a, b);
        assert!(a.minus(&b).is_zero());
        assert_ne!(a, DiffPair::from_positive(Natural::from(3u64)));
    }

    #[test]
    fn diffpair_normalizes_non_negative_differences() {
        let a = DiffPair::new(Natural::from(5u64), Natural::from(3u64));
        assert_eq!(a.to_semiring(), Some(Natural::from(2u64)));
        let b = DiffPair::new(Natural::from(3u64), Natural::from(5u64));
        assert_eq!(b.to_semiring(), None);
    }

    #[test]
    fn natural_to_integers_embeds() {
        assert_eq!(
            NaturalToIntegers.apply(&Natural::from(7u64)),
            Integers::from(7i64)
        );
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn integer_overflow_panics() {
        let _ = Integers(i64::MAX).plus(&Integers(1));
    }
}

//! A reusable law-checking harness.
//!
//! Proposition 3.4 of the paper shows that the expected RA⁺ identities hold
//! **iff** the annotation structure is a commutative semiring; every
//! annotation structure shipped by this crate is therefore validated against
//! the commutative-semiring laws (and, where claimed, the lattice and
//! ω-continuity axioms) on representative samples. The same functions are
//! reused by property-based tests that feed randomly generated elements.

use crate::ring::Ring;
use crate::traits::{
    DistributiveLattice, NaturallyOrdered, OmegaContinuous, Semiring, SemiringHomomorphism,
};

/// The outcome of a law check: `Ok(())` or a description of the first law
/// that failed, including the offending elements.
pub type LawCheck = Result<(), String>;

fn fail<K: std::fmt::Debug>(law: &str, items: &[&K]) -> LawCheck {
    Err(format!("law violated: {law}; witnesses: {items:?}"))
}

/// Checks the commutative-semiring laws on every combination (up to triples)
/// of the provided sample elements.
///
/// If `K::zero() == K::one()` the structure is *degenerate* (the paper's
/// why-provenance semiring `(P(X), ∪, ∪, ∅, ∅)` is the canonical example);
/// in that case the annihilation law `0·a = 0` and the `0 ≠ 1` requirement
/// are skipped, and only the monoid/commutativity/distributivity laws are
/// enforced.
pub fn check_semiring_laws<K: Semiring>(samples: &[K]) -> LawCheck {
    let zero = K::zero();
    let one = K::one();
    let degenerate = zero == one;

    for a in samples {
        // Identity laws.
        if a.plus(&zero) != *a {
            return fail("a + 0 = a", &[a]);
        }
        if zero.plus(a) != *a {
            return fail("0 + a = a", &[a]);
        }
        if a.times(&one) != *a {
            return fail("a · 1 = a", &[a]);
        }
        if one.times(a) != *a {
            return fail("1 · a = a", &[a]);
        }
        if !degenerate {
            if !a.times(&zero).is_zero() {
                return fail("a · 0 = 0", &[a]);
            }
            if !zero.times(a).is_zero() {
                return fail("0 · a = 0", &[a]);
            }
        }
    }

    for a in samples {
        for b in samples {
            if a.plus(b) != b.plus(a) {
                return fail("a + b = b + a", &[a, b]);
            }
            if a.times(b) != b.times(a) {
                return fail("a · b = b · a (commutativity of ·)", &[a, b]);
            }
        }
    }

    for a in samples {
        for b in samples {
            for c in samples {
                if a.plus(&b.plus(c)) != a.plus(b).plus(c) {
                    return fail("(a + b) + c = a + (b + c)", &[a, b, c]);
                }
                if a.times(&b.times(c)) != a.times(b).times(c) {
                    return fail("(a · b) · c = a · (b · c)", &[a, b, c]);
                }
                if a.times(&b.plus(c)) != a.times(b).plus(&a.times(c)) {
                    return fail("a · (b + c) = a·b + a·c", &[a, b, c]);
                }
                if b.plus(c).times(a) != b.times(a).plus(&c.times(a)) {
                    return fail("(b + c) · a = b·a + c·a", &[a, b, c]);
                }
            }
        }
    }
    Ok(())
}

/// Checks the ring laws on top of the semiring laws: `a + (-a) = 0`,
/// involution `-(-a) = a`, additivity `-(a + b) = (-a) + (-b)`, the
/// sign rule `(-a)·b = -(a·b)`, and consistency of the derived difference
/// `a - b = a + (-b)`.
pub fn check_ring_laws<K: Ring>(samples: &[K]) -> LawCheck {
    check_semiring_laws(samples)?;
    for a in samples {
        if !a.plus(&a.neg()).is_zero() {
            return fail("a + (-a) = 0", &[a]);
        }
        if a.neg().neg() != *a {
            return fail("-(-a) = a", &[a]);
        }
    }
    for a in samples {
        for b in samples {
            if a.plus(b).neg() != a.neg().plus(&b.neg()) {
                return fail("-(a + b) = (-a) + (-b)", &[a, b]);
            }
            if a.neg().times(b) != a.times(b).neg() {
                return fail("(-a) · b = -(a · b)", &[a, b]);
            }
            if a.minus(b) != a.plus(&b.neg()) {
                return fail("a - b = a + (-b)", &[a, b]);
            }
        }
    }
    Ok(())
}

/// Checks the extra laws of a (bounded) distributive lattice: idempotence of
/// both operations, absorption in both directions, and that `1` is the top
/// element (`a + 1 = 1`).
pub fn check_distributive_lattice<K: DistributiveLattice>(samples: &[K]) -> LawCheck {
    check_semiring_laws(samples)?;
    let one = K::one();
    for a in samples {
        if a.plus(a) != *a {
            return fail("a ∨ a = a", &[a]);
        }
        if a.times(a) != *a {
            return fail("a ∧ a = a", &[a]);
        }
        if a.plus(&one) != one {
            return fail("a ∨ 1 = 1 (1 is top)", &[a]);
        }
    }
    for a in samples {
        for b in samples {
            if a.plus(&a.times(b)) != *a {
                return fail("a ∨ (a ∧ b) = a (absorption)", &[a, b]);
            }
            if a.times(&a.plus(b)) != *a {
                return fail("a ∧ (a ∨ b) = a (absorption)", &[a, b]);
            }
        }
    }
    Ok(())
}

/// Sanity axioms for ω-continuous semirings that are checkable on samples:
/// the natural order is a partial order, `+`/`·` are monotone, `0` is the
/// least element, and the Kleene star satisfies its defining fixed-point
/// equation `a* = 1 + a·a*`.
pub fn check_omega_axioms<K: OmegaContinuous>(samples: &[K]) -> LawCheck {
    let zero = K::zero();
    for a in samples {
        if !zero.natural_leq(a) {
            return fail("0 ≤ a", &[a]);
        }
        if !a.natural_leq(a) {
            return fail("a ≤ a (reflexivity)", &[a]);
        }
        let star = a.star();
        if star != K::one().plus(&a.times(&star)) {
            return fail("a* = 1 + a·a*", &[a]);
        }
    }
    for a in samples {
        for b in samples {
            if a.natural_leq(b) && b.natural_leq(a) && a != b {
                return fail("antisymmetry of ≤", &[a, b]);
            }
            for c in samples {
                if a.natural_leq(b) && b.natural_leq(c) && !a.natural_leq(c) {
                    return fail("transitivity of ≤", &[a, b, c]);
                }
                if a.natural_leq(b) {
                    if !a.plus(c).natural_leq(&b.plus(c)) {
                        return fail("monotonicity of +", &[a, b, c]);
                    }
                    if !a.times(c).natural_leq(&b.times(c)) {
                        return fail("monotonicity of ·", &[a, b, c]);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks that `h` behaves as a semiring homomorphism on all the provided
/// samples: `h(0) = 0`, `h(1) = 1`, `h(a + b) = h(a) + h(b)`,
/// `h(a · b) = h(a) · h(b)`.
///
/// This is the hypothesis of Proposition 3.5 (and 5.7); the RA⁺/datalog
/// commutation tests in `provsem-core` and `provsem-datalog` use it to
/// validate the homomorphisms they rely on.
pub fn check_homomorphism<A, B, H>(h: &H, samples: &[A]) -> LawCheck
where
    A: Semiring,
    B: Semiring,
    H: SemiringHomomorphism<A, B>,
{
    if h.apply(&A::zero()) != B::zero() {
        return Err("homomorphism violated: h(0) ≠ 0".to_string());
    }
    if h.apply(&A::one()) != B::one() {
        return Err("homomorphism violated: h(1) ≠ 1".to_string());
    }
    for a in samples {
        for b in samples {
            if h.apply(&a.plus(b)) != h.apply(a).plus(&h.apply(b)) {
                return fail("h(a + b) = h(a) + h(b)", &[a, b]);
            }
            if h.apply(&a.times(b)) != h.apply(a).times(&h.apply(b)) {
                return fail("h(a · b) = h(a) · h(b)", &[a, b]);
            }
        }
    }
    Ok(())
}

/// Checks that the natural order reported by [`NaturallyOrdered::natural_leq`]
/// is consistent with its definition `a ≤ b ⇔ ∃x. a + x = b`, using the
/// sample set itself as the pool of candidate witnesses `x`. Soundness only:
/// a reported `a ≤ b` does not require a witness inside the finite sample,
/// but a witness found in the sample must imply `a ≤ b`.
pub fn check_natural_order_witnesses<K: NaturallyOrdered>(samples: &[K]) -> LawCheck {
    for a in samples {
        for b in samples {
            let has_witness = samples.iter().any(|x| a.plus(x) == *b);
            if has_witness && !a.natural_leq(b) {
                return fail("∃x. a + x = b but natural_leq(a, b) is false", &[a, b]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::Bool;
    use crate::natural::Natural;
    use crate::traits::FnHomomorphism;

    #[test]
    fn harness_accepts_the_booleans() {
        check_semiring_laws(&[Bool::from(false), Bool::from(true)]).unwrap();
    }

    #[test]
    fn harness_rejects_a_broken_structure() {
        // Subtraction-like structure: (ℕ, monus, ·, 0, 1) is not a semiring
        // (monus is not associative); encode it via a wrapper.
        #[derive(Clone, PartialEq, Debug)]
        struct Monus(u64);
        impl Semiring for Monus {
            fn zero() -> Self {
                Monus(0)
            }
            fn one() -> Self {
                Monus(1)
            }
            fn plus(&self, other: &Self) -> Self {
                Monus(
                    self.0
                        .saturating_sub(other.0)
                        .max(other.0.saturating_sub(self.0)),
                )
            }
            fn times(&self, other: &Self) -> Self {
                Monus(self.0 * other.0)
            }
        }
        let samples = vec![Monus(0), Monus(1), Monus(2), Monus(3)];
        assert!(check_semiring_laws(&samples).is_err());
    }

    #[test]
    fn harness_rejects_a_broken_homomorphism() {
        // n ↦ n + 1 is not a homomorphism ℕ → ℕ.
        let h = FnHomomorphism::new(|n: &Natural| Natural::from(n.value() + 1));
        let samples: Vec<Natural> = (0u64..4).map(Natural::from).collect();
        assert!(check_homomorphism(&h, &samples).is_err());
    }

    #[test]
    fn harness_accepts_the_support_homomorphism() {
        let h = FnHomomorphism::new(|n: &Natural| Bool::from(!n.is_zero()));
        let samples: Vec<Natural> = (0u64..6).map(Natural::from).collect();
        check_homomorphism(&h, &samples).unwrap();
    }

    #[test]
    fn natural_order_witness_check_on_naturals() {
        let samples: Vec<Natural> = (0u64..8).map(Natural::from).collect();
        check_natural_order_witnesses(&samples).unwrap();
    }
}

//! Property-based ring law suite.
//!
//! The incremental view maintenance machinery (`Plan::maintain`,
//! `maintain_fixpoint`) trusts that its annotation structures are
//! commutative **rings**: deletions are insertions with additively inverted
//! annotations, and the delta rules cancel exactly because `a + (-a) = 0`.
//! This suite proptest-checks, for every ring type shipped by the crate
//! (`Integers` = ℤ, `ZPolynomial` = ℤ\[X\], and the difference-pair liftings
//! `DiffPair<Natural>` / `DiffPair<ProvenancePolynomial>`), on randomly
//! generated elements:
//!
//! * all the commutative-semiring laws (via the reference harness),
//! * the additive-inverse law `a + (-a) = 0` and its consequences
//!   (`-(-a) = a`, `-(a+b) = (-a)+(-b)`, `(-a)·b = -(a·b)`),
//! * distributivity restated on signed elements,
//! * consistency of the derived difference `a - b = a + (-b)`,
//!
//! plus the homomorphism laws for the semiring→`DiffPair` lifting
//! (`LiftToDiff` preserves `0`, `1`, `+`, `·`) and the isomorphism
//! `DiffPair<Natural> ≅ ℤ`.

use proptest::prelude::*;
use provsem_semiring::prelude::*;
use provsem_semiring::properties::{check_homomorphism, check_ring_laws, check_semiring_laws};

/// Cases per property; with six properties per ring every structure sees
/// several hundred random elements.
const CASES: u32 = 128;

/// Checks the commutative-ring laws for one annotation type.
///
/// Usage: `ring_laws!(module_name, Type, strategy_expr)` where
/// `strategy_expr` is a proptest strategy producing `Type`.
macro_rules! ring_laws {
    ($name:ident, $ty:ty, $strategy:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(CASES))]

                #[test]
                fn additive_inverse_law(a in $strategy) {
                    prop_assert!(a.plus(&a.neg()).is_zero());
                    prop_assert!(a.neg().plus(&a).is_zero());
                    prop_assert!(a.minus(&a).is_zero());
                }

                #[test]
                fn negation_is_an_involution(a in $strategy) {
                    prop_assert_eq!(a.neg().neg(), a.clone());
                }

                #[test]
                fn negation_distributes_over_plus_and_times(
                    a in $strategy, b in $strategy
                ) {
                    prop_assert_eq!(a.plus(&b).neg(), a.neg().plus(&b.neg()));
                    prop_assert_eq!(a.neg().times(&b), a.times(&b).neg());
                    prop_assert_eq!(a.times(&b.neg()), a.times(&b).neg());
                }

                #[test]
                fn times_distributes_over_minus(
                    a in $strategy, b in $strategy, c in $strategy
                ) {
                    prop_assert_eq!(
                        a.times(&b.minus(&c)),
                        a.times(&b).minus(&a.times(&c))
                    );
                }

                #[test]
                fn minus_is_plus_of_negation(a in $strategy, b in $strategy) {
                    prop_assert_eq!(a.minus(&b), a.plus(&b.neg()));
                    prop_assert_eq!(<$ty>::zero().minus(&a), a.neg());
                }

                #[test]
                fn random_samples_pass_the_reference_harnesses(
                    xs in prop::collection::vec($strategy, 1..5)
                ) {
                    prop_assert_eq!(check_semiring_laws(&xs), Ok(()));
                    prop_assert_eq!(check_ring_laws(&xs), Ok(()));
                }
            }
        }
    };
}

// ---- element generators ----------------------------------------------------

fn arb_integers() -> impl Strategy<Value = Integers> {
    (-60i64..60).prop_map(Integers::from)
}

fn arb_natural() -> impl Strategy<Value = Natural> {
    (0u64..60).prop_map(Natural::from)
}

fn var_name(id: u8) -> String {
    format!("x{id}")
}

fn arb_monomial() -> impl Strategy<Value = Monomial> {
    prop::collection::vec((0u8..3, 1u32..3), 0..3)
        .prop_map(|ps| Monomial::from_powers(ps.into_iter().map(|(v, e)| (var_name(v), e))))
}

fn arb_zpolynomial() -> impl Strategy<Value = ZPolynomial> {
    prop::collection::vec((arb_monomial(), -4i64..4), 0..4).prop_map(|terms| {
        ZPolynomial::from_terms(terms.into_iter().map(|(m, c)| (m, Integers::from(c))))
    })
}

fn arb_provenance_polynomial() -> impl Strategy<Value = ProvenancePolynomial> {
    prop::collection::vec((arb_monomial(), 0u64..4), 0..4).prop_map(|terms| {
        ProvenancePolynomial::from_terms(terms.into_iter().map(|(m, c)| (m, Natural::from(c))))
    })
}

/// Unnormalized difference pairs over ℕ: both components vary, so the
/// quotient equality `(a, b) = (c, d) ⇔ a + d = c + b` is exercised on
/// representations other than `(k, 0)` / `(0, k)`.
fn arb_diff_natural() -> impl Strategy<Value = DiffPair<Natural>> {
    (arb_natural(), arb_natural()).prop_map(|(p, n)| DiffPair::new(p, n))
}

fn arb_diff_polynomial() -> impl Strategy<Value = DiffPair<ProvenancePolynomial>> {
    (arb_provenance_polynomial(), arb_provenance_polynomial())
        .prop_map(|(p, n)| DiffPair::new(p, n))
}

// ---- the suite: every shipped ring -----------------------------------------

ring_laws!(integers_ring_laws, Integers, arb_integers());
ring_laws!(zpolynomial_ring_laws, ZPolynomial, arb_zpolynomial());
ring_laws!(
    diff_natural_ring_laws,
    DiffPair<Natural>,
    arb_diff_natural()
);
ring_laws!(
    diff_polynomial_ring_laws,
    DiffPair<ProvenancePolynomial>,
    arb_diff_polynomial()
);

// ---- the semiring → DiffPair lifting ---------------------------------------

mod lifting_homomorphism {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(CASES))]

        /// `LiftToDiff : K → DiffPair<K>` satisfies the homomorphism laws
        /// (h(0) = 0, h(1) = 1, h respects + and ·) on random ℕ samples.
        #[test]
        fn lift_natural_is_a_homomorphism(
            xs in prop::collection::vec(arb_natural(), 1..5)
        ) {
            prop_assert_eq!(
                check_homomorphism::<Natural, DiffPair<Natural>, _>(&LiftToDiff, &xs),
                Ok(())
            );
        }

        /// The same on random ℕ\[X\] samples.
        #[test]
        fn lift_polynomial_is_a_homomorphism(
            xs in prop::collection::vec(arb_provenance_polynomial(), 1..5)
        ) {
            prop_assert_eq!(
                check_homomorphism::<ProvenancePolynomial, DiffPair<ProvenancePolynomial>, _>(
                    &LiftToDiff,
                    &xs
                ),
                Ok(())
            );
        }

        /// The lifting is injective (cancellative +): embedded elements are
        /// equal in the quotient iff they were equal in K.
        #[test]
        fn lift_is_injective(a in arb_natural(), b in arb_natural()) {
            let (la, lb) = (LiftToDiff.apply(&a), LiftToDiff.apply(&b));
            prop_assert_eq!(la == lb, a == b);
        }

        /// Round trip: a non-negative difference normalizes back to K, and
        /// lifting that value returns to the same equivalence class.
        #[test]
        fn non_negative_differences_round_trip(a in arb_natural(), b in arb_natural()) {
            let d = DiffPair::new(a, b);
            match d.to_semiring() {
                Some(k) => prop_assert_eq!(DiffPair::from_positive(k), d),
                None => prop_assert_eq!(d.clone().neg().to_semiring().is_some(), true),
            }
        }

        /// `DiffPair<Natural> ≅ ℤ`: the map (p, n) ↦ p - n is a ring
        /// isomorphism onto `Integers`.
        #[test]
        fn diff_natural_is_isomorphic_to_z(
            a in arb_diff_natural(), b in arb_diff_natural()
        ) {
            fn to_z(d: &DiffPair<Natural>) -> Integers {
                Integers::from(*d.positive()).minus(&Integers::from(*d.negative()))
            }
            prop_assert_eq!(to_z(&a.plus(&b)), to_z(&a).plus(&to_z(&b)));
            prop_assert_eq!(to_z(&a.times(&b)), to_z(&a).times(&to_z(&b)));
            prop_assert_eq!(to_z(&a.neg()), to_z(&a).neg());
            prop_assert_eq!(a == b, to_z(&a) == to_z(&b));
        }
    }
}

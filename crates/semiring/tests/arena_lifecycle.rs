//! Lifecycle regression tests for the **sharded** circuit arena: stale
//! handles crossing a session/generation boundary must panic (never silently
//! alias another computation's nodes), `CircuitSession` guards must compose
//! across threads, and [`circuit::vacuum`] must reclaim storage globally
//! while refusing to run under any active session.
//!
//! These live in an integration binary (own process) because `vacuum`
//! mutates process-wide state: it would stale handles held by unrelated lib
//! tests running on sibling threads. Within this binary every test holds
//! `ARENA_TEST_LOCK` for the same reason.

use provsem_semiring::circuit::{self, shared_node_count, CircuitSession};
use provsem_semiring::{Circuit, Natural, Semiring, Valuation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Mutex, MutexGuard, PoisonError};

static ARENA_TEST_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    // A panicking test (several tests unwind on purpose) poisons the mutex;
    // the lock only serializes, so poisoning carries no meaning here.
    ARENA_TEST_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default()
}

#[test]
fn stale_handle_crossing_a_session_boundary_panics_not_aliases() {
    let _serial = serial();
    let escaped = CircuitSession::run(|| Circuit::var("esc").times(&Circuit::var("aped")));
    // Rebuilding the same structure lands on the same *global* node (the
    // sharded store is shared across generations)...
    let rebuilt = Circuit::var("esc").times(&Circuit::var("aped"));
    assert_eq!(rebuilt.node_id(), escaped.node_id());
    // ...but the escaped handle's generation died with the session, so any
    // use panics loudly instead of silently reading the live node.
    let err = catch_unwind(|| escaped.to_polynomial()).expect_err("escaped handle must be stale");
    let message = panic_message(err);
    assert!(message.contains("stale circuit handle"), "{message}");
    // The in-generation handle keeps working.
    assert!(!rebuilt.is_zero());
}

#[test]
fn sessions_compose_within_and_across_threads() {
    let _serial = serial();
    // Sequentially on one thread: each session gets a fresh generation.
    let first = CircuitSession::run(|| Circuit::var("seq").node_id());
    let second = CircuitSession::run(|| Circuit::var("seq").node_id());
    assert_eq!(first, second, "hash-consing spans sessions");
    // Concurrently across threads: every worker runs its own session over
    // the shared store, and identical subcircuits are the same global node.
    let ids: Vec<usize> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..4)
            .map(|w| {
                s.spawn(move || {
                    CircuitSession::run(|| {
                        let e = Circuit::var("shared").plus(&Circuit::var("across"));
                        // The session's handles are fully usable in-thread.
                        let ones = Valuation::from_pairs([
                            ("shared", Natural::from(w + 1u64)),
                            ("across", Natural::from(1u64)),
                        ]);
                        assert_eq!(e.eval(&ones), Natural::from(w + 2));
                        e.node_id()
                    })
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker"))
            .collect()
    });
    assert!(ids.windows(2).all(|p| p[0] == p[1]), "{ids:?}");
}

#[test]
fn vacuum_truncates_globally_and_stales_other_threads_handles() {
    let _serial = serial();
    circuit::reset();
    let (to_worker, from_main) = mpsc::channel::<()>();
    let (to_main, from_worker) = mpsc::channel::<()>();
    std::thread::scope(|s| {
        s.spawn(move || {
            let held = Circuit::var("worker").times(&Circuit::var("held"));
            assert_eq!(shared_node_count([held]), 3);
            to_main.send(()).expect("signal built");
            from_main.recv().expect("await vacuum");
            // The worker's next arena access syncs with the vacuum epoch
            // and finds its generation gone.
            let err = catch_unwind(AssertUnwindSafe(|| held.node_count()))
                .expect_err("pre-vacuum handle must be stale");
            let message = panic_message(err);
            assert!(message.contains("stale circuit handle"), "{message}");
        });
        from_worker.recv().expect("await worker build");
        let mine = Circuit::var("main").plus(&Circuit::var("mine"));
        assert!(circuit::arena_node_count() > 2);
        circuit::vacuum();
        assert_eq!(
            circuit::arena_node_count(),
            2,
            "vacuum truncates every shard"
        );
        // The vacuuming thread's own pre-vacuum handles are stale too...
        assert!(catch_unwind(AssertUnwindSafe(|| mine.node_count())).is_err());
        // ...while the constants survive and the arena restocks on demand.
        assert!(Circuit::zero().is_zero());
        assert!(!Circuit::var("fresh").is_zero());
        to_worker.send(()).expect("release worker");
    });
}

#[test]
fn vacuum_refuses_while_any_session_is_active() {
    let _serial = serial();
    let (to_worker, from_main) = mpsc::channel::<()>();
    let (to_main, from_worker) = mpsc::channel::<()>();
    std::thread::scope(|s| {
        s.spawn(move || {
            let _session = CircuitSession::begin();
            to_main.send(()).expect("signal session open");
            from_main.recv().expect("await main");
        });
        from_worker.recv().expect("await session");
        // The session lives on another thread; vacuum must still refuse.
        let err = catch_unwind(circuit::vacuum).expect_err("vacuum under session");
        let message = panic_message(err);
        assert!(message.contains("CircuitSession is active"), "{message}");
        to_worker.send(()).expect("release worker");
    });
    // Once the session is gone, vacuum succeeds.
    circuit::vacuum();
    assert_eq!(circuit::arena_node_count(), 2);
}

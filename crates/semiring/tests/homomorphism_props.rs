//! Property tests for the homomorphism catalogue (Proposition 3.5's
//! hypothesis): every shipped homomorphism must satisfy `h(0) = 0`,
//! `h(1) = 1`, `h(a + b) = h(a) + h(b)` and `h(a · b) = h(a) · h(b)` on
//! randomly generated elements — not just on the handful of hand-picked
//! samples in the unit tests. The datalog-side companion
//! (`provsem-datalog`'s `homomorphism_commutation` test) then checks the
//! *conclusion* of Proposition 3.5 / Theorem 5.7: commutation with query and
//! datalog evaluation on random instances.

use proptest::prelude::*;
use provsem_semiring::prelude::*;
use provsem_semiring::properties::check_homomorphism;

const CASES: u32 = 128;

fn var_name(id: u8) -> String {
    format!("x{id}")
}

fn arb_natural() -> impl Strategy<Value = Natural> {
    (0u64..60).prop_map(Natural::from)
}

fn arb_natinf() -> impl Strategy<Value = NatInf> {
    (0u64..30, 0u8..8).prop_map(|(n, tag)| {
        if tag == 0 {
            NatInf::Inf
        } else {
            NatInf::Fin(n)
        }
    })
}

fn arb_monomial() -> impl Strategy<Value = Monomial> {
    prop::collection::vec((0u8..3, 1u32..3), 0..3)
        .prop_map(|ps| Monomial::from_powers(ps.into_iter().map(|(v, e)| (var_name(v), e))))
}

fn arb_provenance_polynomial() -> impl Strategy<Value = ProvenancePolynomial> {
    prop::collection::vec((arb_monomial(), 0u64..4), 0..4).prop_map(|terms| {
        ProvenancePolynomial::from_terms(terms.into_iter().map(|(m, c)| (m, Natural::from(c))))
    })
}

/// `h(a ∘ b) = h(a) ∘ h(b)` for both operations, on a pair of random
/// elements (the binary-law half of [`check_homomorphism`], stated directly
/// so failures name the homomorphism).
fn commutes_with_ops<A: Semiring, B: Semiring, H: SemiringHomomorphism<A, B>>(
    h: &H,
    a: &A,
    b: &A,
) -> bool {
    h.apply(&a.plus(b)) == h.apply(a).plus(&h.apply(b))
        && h.apply(&a.times(b)) == h.apply(a).times(&h.apply(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn scalar_homomorphisms_commute_with_ops(a in arb_natural(), b in arb_natural()) {
        prop_assert!(commutes_with_ops(&NaturalToBool, &a, &b));
        prop_assert!(commutes_with_ops(&NaturalToNatInf, &a, &b));
        let composed = Compose::<_, _, NatInf>::new(NaturalToNatInf, NatInfToBool);
        prop_assert!(commutes_with_ops(&composed, &a, &b));
    }

    #[test]
    fn natinf_to_bool_commutes_with_ops(a in arb_natinf(), b in arb_natinf()) {
        prop_assert!(commutes_with_ops(&NatInfToBool, &a, &b));
    }

    #[test]
    fn polynomial_homomorphisms_commute_with_ops(
        p in arb_provenance_polynomial(),
        q in arb_provenance_polynomial(),
    ) {
        prop_assert!(commutes_with_ops(&DropCoefficients, &p, &q));
        prop_assert!(commutes_with_ops(&ToPosBool, &p, &q));
        prop_assert!(commutes_with_ops(&ToWitnesses, &p, &q));
        prop_assert!(commutes_with_ops(&MapCoefficients::new(NaturalToBool), &p, &q));
        // Why-provenance targets the degenerate (P(X), ∪, ∪) semiring, where
        // `·` does not annihilate; the laws hold only away from zero (see
        // the rustdoc caveat on `ToWhySet`).
        if !p.is_zero() && !q.is_zero() {
            prop_assert!(commutes_with_ops(&ToWhySet, &p, &q));
        } else {
            prop_assert_eq!(ToWhySet.apply(&ProvenancePolynomial::zero()), WhySet::zero());
        }
    }

    #[test]
    fn catalogue_passes_the_reference_harness_on_random_samples(
        ns in prop::collection::vec(arb_natural(), 1..5),
        ps in prop::collection::vec(arb_provenance_polynomial(), 1..4),
    ) {
        prop_assert_eq!(check_homomorphism(&NaturalToBool, &ns), Ok(()));
        prop_assert_eq!(check_homomorphism(&NaturalToNatInf, &ns), Ok(()));
        prop_assert_eq!(check_homomorphism(&DropCoefficients, &ps), Ok(()));
        let nonzero: Vec<_> = ps.iter().filter(|p| !p.is_zero()).cloned().collect();
        prop_assert_eq!(check_homomorphism(&ToWhySet, &nonzero), Ok(()));
    }

    #[test]
    fn eval_at_a_valuation_is_a_homomorphism(
        p in arb_provenance_polynomial(),
        q in arb_provenance_polynomial(),
        v0 in 0u64..4, v1 in 0u64..4, v2 in 0u64..4,
    ) {
        // Proposition 4.2 (universality of ℕ[X]): evaluation at any
        // valuation is the unique homomorphism extending it.
        let valuation = Valuation::from_pairs([
            ("x0", Natural::from(v0)),
            ("x1", Natural::from(v1)),
            ("x2", Natural::from(v2)),
        ]);
        prop_assert_eq!(
            p.plus(&q).eval(&valuation),
            p.eval(&valuation).plus(&q.eval(&valuation))
        );
        prop_assert_eq!(
            p.times(&q).eval(&valuation),
            p.eval(&valuation).times(&q.eval(&valuation))
        );
    }

    #[test]
    fn broken_maps_are_rejected_by_the_harness(ns in prop::collection::vec(arb_natural(), 2..6)) {
        // n ↦ n + 1 preserves neither 0 nor +; the harness must say so for
        // any sample pool (h(0) = 1 ≠ 0 is checked unconditionally).
        let broken = FnHomomorphism::new(|n: &Natural| Natural::from(n.value() + 1));
        prop_assert!(check_homomorphism(&broken, &ns).is_err());
    }
}

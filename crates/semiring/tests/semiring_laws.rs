//! Property-based semiring law suite.
//!
//! Proposition 3.4 of the paper makes the commutative-semiring laws the
//! load-bearing hypothesis of everything downstream, and the semi-naive
//! datalog evaluator additionally trusts `+`-idempotence where it is
//! claimed. This suite proptest-checks, for **every** annotation structure
//! shipped by the crate, on randomly generated elements:
//!
//! * associativity and commutativity of `+` and `·`,
//! * the `0`/`1` identity laws and annihilation by `0` (skipped for the
//!   degenerate why-provenance semiring, where `0 = 1`),
//! * distributivity of `·` over `+` on both sides,
//! * agreement with the reference harness
//!   [`provsem_semiring::properties::check_semiring_laws`],
//! * `a + a = a` for every type claiming [`PlusIdempotent`].
//!
//! The floating-point semirings (fuzzy, Viterbi) are sampled from dyadic
//! values (`k/2ⁿ` with small `n`) so that `max`/`min`/products are exact and
//! the laws hold on the nose rather than up to rounding.

use proptest::prelude::*;
use provsem_semiring::prelude::*;
use provsem_semiring::properties::check_semiring_laws;

/// Cases per property; together with the five properties per semiring every
/// structure sees several hundred random elements.
const CASES: u32 = 128;

/// Checks the commutative-semiring laws for one annotation type.
///
/// Usage: `semiring_laws!(module_name, Type, strategy_expr)` where
/// `strategy_expr` is a proptest strategy producing `Type`. Pair with
/// [`plus_idempotence!`] for types claiming [`PlusIdempotent`].
macro_rules! semiring_laws {
    ($name:ident, $ty:ty, $strategy:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(CASES))]

                #[test]
                fn plus_is_associative_and_commutative(
                    a in $strategy, b in $strategy, c in $strategy
                ) {
                    prop_assert_eq!(a.plus(&b), b.plus(&a));
                    prop_assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
                }

                #[test]
                fn times_is_associative_and_commutative(
                    a in $strategy, b in $strategy, c in $strategy
                ) {
                    prop_assert_eq!(a.times(&b), b.times(&a));
                    prop_assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
                }

                #[test]
                fn identity_and_annihilation_laws(a in $strategy) {
                    let zero = <$ty>::zero();
                    let one = <$ty>::one();
                    prop_assert_eq!(a.plus(&zero), a.clone());
                    prop_assert_eq!(zero.plus(&a), a.clone());
                    prop_assert_eq!(a.times(&one), a.clone());
                    prop_assert_eq!(one.times(&a), a.clone());
                    // The degenerate why-provenance structure (0 = 1) has no
                    // annihilation law; everything else must satisfy it.
                    if zero != one {
                        prop_assert!(a.times(&zero).is_zero());
                        prop_assert!(zero.times(&a).is_zero());
                    }
                }

                #[test]
                fn times_distributes_over_plus(
                    a in $strategy, b in $strategy, c in $strategy
                ) {
                    prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
                    prop_assert_eq!(b.plus(&c).times(&a), b.times(&a).plus(&c.times(&a)));
                }

                #[test]
                fn random_samples_pass_the_reference_harness(
                    xs in prop::collection::vec($strategy, 1..5)
                ) {
                    prop_assert_eq!(check_semiring_laws(&xs), Ok(()));
                }
            }
        }
    };
}

/// Checks `a + a = a` for a [`PlusIdempotent`] semiring (separate macro so
/// the trait bound is enforced at compile time).
macro_rules! plus_idempotence {
    ($name:ident, $ty:ty, $strategy:expr) => {
        mod $name {
            use super::*;

            fn assert_claims_idempotence<K: PlusIdempotent>() {}

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(CASES))]

                #[test]
                fn plus_is_idempotent(a in $strategy) {
                    assert_claims_idempotence::<$ty>();
                    prop_assert_eq!(a.plus(&a), a.clone());
                }
            }
        }
    };
}

// ---- element generators ----------------------------------------------------

fn arb_natural() -> impl Strategy<Value = Natural> {
    (0u64..60).prop_map(Natural::from)
}

fn arb_bool() -> impl Strategy<Value = Bool> {
    (0u8..2).prop_map(|b| Bool::from(b == 1))
}

fn arb_natinf() -> impl Strategy<Value = NatInf> {
    (0u64..30, 0u8..8).prop_map(|(n, tag)| {
        if tag == 0 {
            NatInf::Inf
        } else {
            NatInf::Fin(n)
        }
    })
}

fn arb_tropical() -> impl Strategy<Value = Tropical> {
    (0u64..30, 0u8..8).prop_map(|(n, tag)| {
        if tag == 0 {
            Tropical::unreachable()
        } else {
            Tropical::cost(n)
        }
    })
}

/// Exactly representable dyadic values in `[0, 1]`, so fuzzy `max`/`min` and
/// Viterbi products stay exact.
fn arb_unit_interval() -> impl Strategy<Value = f64> {
    (0u8..5).prop_map(|i| [0.0, 0.125, 0.25, 0.5, 1.0][i as usize])
}

fn arb_fuzzy() -> impl Strategy<Value = Fuzzy> {
    arb_unit_interval().prop_map(Fuzzy::new)
}

fn arb_viterbi() -> impl Strategy<Value = Viterbi> {
    arb_unit_interval().prop_map(Viterbi::new)
}

fn arb_clearance() -> impl Strategy<Value = Clearance> {
    (0usize..Clearance::enumerate().len()).prop_map(|i| Clearance::enumerate()[i])
}

fn var_name(id: u8) -> String {
    format!("x{id}")
}

fn arb_posbool() -> impl Strategy<Value = PosBool> {
    // A random DNF over four variables; includes ff (no clauses) and tt
    // (an empty clause).
    prop::collection::vec(prop::collection::vec(0u8..4, 0..3), 0..4)
        .prop_map(|dnf| PosBool::from_dnf(dnf.into_iter().map(|c| c.into_iter().map(var_name))))
}

fn arb_whyset() -> impl Strategy<Value = WhySet> {
    prop::collection::vec(0u8..5, 0..4)
        .prop_map(|vs| WhySet::from_vars(vs.into_iter().map(var_name)))
}

fn arb_witness() -> impl Strategy<Value = Witness> {
    prop::collection::vec(prop::collection::vec(0u8..4, 0..3), 0..3)
        .prop_map(|ws| Witness::from_witnesses(ws.into_iter().map(|w| w.into_iter().map(var_name))))
}

fn arb_event() -> impl Strategy<Value = Event> {
    (0u8..2, prop::collection::vec(0u32..6, 0..4)).prop_map(|(co, worlds)| {
        if co == 0 {
            Event::excluding(worlds)
        } else {
            Event::of_worlds(worlds)
        }
    })
}

fn arb_monomial() -> impl Strategy<Value = Monomial> {
    prop::collection::vec((0u8..3, 1u32..3), 0..3)
        .prop_map(|ps| Monomial::from_powers(ps.into_iter().map(|(v, e)| (var_name(v), e))))
}

fn arb_provenance_polynomial() -> impl Strategy<Value = ProvenancePolynomial> {
    prop::collection::vec((arb_monomial(), 0u64..4), 0..4).prop_map(|terms| {
        ProvenancePolynomial::from_terms(terms.into_iter().map(|(m, c)| (m, Natural::from(c))))
    })
}

fn arb_bool_polynomial() -> impl Strategy<Value = BoolPolynomial> {
    prop::collection::vec(arb_monomial(), 0..4)
        .prop_map(|ms| BoolPolynomial::from_terms(ms.into_iter().map(|m| (m, Bool::from(true)))))
}

fn arb_natinf_polynomial() -> impl Strategy<Value = NatInfPolynomial> {
    prop::collection::vec((arb_monomial(), arb_natinf()), 0..4)
        .prop_map(NatInfPolynomial::from_terms)
}

/// Random hash-consed circuits: a random polynomial built into circuit form,
/// multiplied and summed with further random polynomials so that the handles
/// cover non-normalized shapes (`Plus`/`Times` nodes whose operands are
/// whole subcircuits, not just monomials).
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (
        arb_provenance_polynomial(),
        arb_provenance_polynomial(),
        arb_provenance_polynomial(),
    )
        .prop_map(|(p, q, r)| {
            Circuit::from_polynomial(&p)
                .times(&Circuit::from_polynomial(&q))
                .plus(&Circuit::from_polynomial(&r))
        })
}

/// The same circuits read modulo absorption (PosBool(X) equality).
fn arb_bool_circuit() -> impl Strategy<Value = BoolCircuit> {
    arb_circuit().prop_map(BoolCircuit::from)
}

// ---- the suite: every shipped semiring -------------------------------------

semiring_laws!(natural_laws, Natural, arb_natural());
semiring_laws!(boolean_laws, Bool, arb_bool());
semiring_laws!(natinf_laws, NatInf, arb_natinf());
semiring_laws!(tropical_laws, Tropical, arb_tropical());
semiring_laws!(fuzzy_laws, Fuzzy, arb_fuzzy());
semiring_laws!(viterbi_laws, Viterbi, arb_viterbi());
semiring_laws!(clearance_laws, Clearance, arb_clearance());
semiring_laws!(posbool_laws, PosBool, arb_posbool());
semiring_laws!(whyset_laws, WhySet, arb_whyset());
semiring_laws!(witness_laws, Witness, arb_witness());
semiring_laws!(event_laws, Event, arb_event());
semiring_laws!(
    provenance_polynomial_laws,
    ProvenancePolynomial,
    arb_provenance_polynomial()
);
semiring_laws!(bool_polynomial_laws, BoolPolynomial, arb_bool_polynomial());
semiring_laws!(
    natinf_polynomial_laws,
    NatInfPolynomial,
    arb_natinf_polynomial()
);
// The hash-consed circuit handles: the ℕ[X] reading must satisfy the
// commutative-semiring laws under semantic (lowered-polynomial) equality,
// and the PosBool reading must additionally be +-idempotent.
semiring_laws!(circuit_laws, Circuit, arb_circuit());
semiring_laws!(bool_circuit_laws, BoolCircuit, arb_bool_circuit());

plus_idempotence!(boolean_idempotence, Bool, arb_bool());
plus_idempotence!(tropical_idempotence, Tropical, arb_tropical());
plus_idempotence!(fuzzy_idempotence, Fuzzy, arb_fuzzy());
plus_idempotence!(viterbi_idempotence, Viterbi, arb_viterbi());
plus_idempotence!(clearance_idempotence, Clearance, arb_clearance());
plus_idempotence!(posbool_idempotence, PosBool, arb_posbool());
plus_idempotence!(whyset_idempotence, WhySet, arb_whyset());
plus_idempotence!(witness_idempotence, Witness, arb_witness());
plus_idempotence!(event_idempotence, Event, arb_event());
plus_idempotence!(bool_circuit_idempotence, BoolCircuit, arb_bool_circuit());

// ---- formal power series ----------------------------------------------------
//
// `TruncatedSeries` exposes its (quotient-)semiring operations as inherent
// methods rather than the `Semiring` trait, because its `0`/`1` depend on
// the truncation degree. The quotient ℕ∞[[X]] / (degree > d) is still a
// commutative semiring for each fixed `d`, which is what we check here.
mod truncated_series_laws {
    use super::*;

    const MAX_DEGREE: u32 = 4;

    fn arb_series() -> impl Strategy<Value = TruncatedSeries> {
        prop::collection::vec((arb_monomial(), arb_natinf()), 0..4).prop_map(|terms| {
            let mut s = TruncatedSeries::zero(MAX_DEGREE);
            for (m, c) in terms {
                s.add_term(m, c);
            }
            s
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(CASES))]

        #[test]
        fn series_semiring_laws(a in arb_series(), b in arb_series(), c in arb_series()) {
            let zero = TruncatedSeries::zero(MAX_DEGREE);
            let one = TruncatedSeries::one(MAX_DEGREE);
            // Commutative monoids.
            prop_assert_eq!(a.plus(&b), b.plus(&a));
            prop_assert_eq!(a.plus(&b).plus(&c), a.plus(&b.plus(&c)));
            prop_assert_eq!(a.times(&b), b.times(&a));
            prop_assert_eq!(a.times(&b).times(&c), a.times(&b.times(&c)));
            // Identities and annihilation.
            prop_assert_eq!(a.plus(&zero), a.clone());
            prop_assert_eq!(a.times(&one), a.clone());
            prop_assert!(a.times(&zero).is_zero());
            // Distributivity.
            prop_assert_eq!(a.times(&b.plus(&c)), a.times(&b).plus(&a.times(&c)));
        }
    }
}

//! Load generator + differential replay: the acceptance harness for the
//! concurrent query service.
//!
//! Phase 1 (concurrent): reader sessions fire a mixed query workload
//! (`QUERY` / `READ` / `VIEW` / `DATALOG`) while writer sessions
//! continuously commit delta batches and define/drop standing views against
//! the same live [`Service`]. Every reply carries the epoch it was computed
//! at; readers log `(epoch, request, rendered reply)`, writers log their
//! catalog-changing ops the same way.
//!
//! Phase 2 (serial replay): a **fresh** service on the same seed database
//! re-applies the writer ops in epoch order — epochs are contiguous, so the
//! total commit order is fully determined — capturing a snapshot per epoch.
//! Each logged read is then re-executed single-file, pinned to the snapshot
//! of the epoch its concurrent reply reported. The rendered bytes must be
//! **identical**: any interleaving artifact (torn batch, stale view, plan
//! cached across a catalog change) shows up as a byte mismatch.
//!
//! Writes a machine-readable throughput record to `BENCH_service.json` (or
//! the path given as the first argument) and exits non-zero on any
//! mismatch.

use provsem_core::prelude::{Database, DbSnapshot, KRelation, Schema, Tuple, Value};
use provsem_semiring::ring::Integers;
use provsem_server::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const N_READERS: usize = 6;
const QUERIES_PER_READER: usize = 200;
const N_WRITERS: usize = 2;
const COMMITS_PER_WRITER: usize = 40;
/// Node ids for the edge relation; edges only go from lower to higher ids,
/// so datalog reachability always converges (the graph stays acyclic).
const N_NODES: i64 = 7;
/// Rows in the fact relation `F` — comfortably past the planner's
/// auto-batch threshold, so reads of `F` run on the batch engine against
/// the snapshot-resident columnar cache (and commits into `F` patch it).
const N_FACTS: i64 = 320;
/// Distinct `v` strings in `F`: selective predicates return ~8 rows.
const N_TAGS: i64 = 40;

/// One logged interaction: the epoch the reply reported, the request line,
/// and the rendered reply.
type LogEntry = (u64, String, String);

/// Per-category request counters for one reader session: how many requests
/// it issued and the in-handler seconds they took, split into `DATALOG`
/// fixpoint queries vs everything else (relational reads). Summing these
/// across readers gives the aggregate per-thread service rate of each
/// category — the datalog fixpoints are orders of magnitude heavier than
/// the relational lookups, so folding them into one queries/s number hides
/// both.
#[derive(Default)]
struct ReadTiming {
    datalog_queries: usize,
    datalog_seconds: f64,
    relational_queries: usize,
    relational_seconds: f64,
}

impl ReadTiming {
    fn record(&mut self, line: &str, seconds: f64) {
        if line.starts_with("DATALOG") {
            self.datalog_queries += 1;
            self.datalog_seconds += seconds;
        } else {
            self.relational_queries += 1;
            self.relational_seconds += seconds;
        }
    }

    fn merge(&mut self, other: &ReadTiming) {
        self.datalog_queries += other.datalog_queries;
        self.datalog_seconds += other.datalog_seconds;
        self.relational_queries += other.relational_queries;
        self.relational_seconds += other.relational_seconds;
    }
}

fn seed_db() -> Database<Integers> {
    let mut r = KRelation::empty(Schema::new(["a", "b"]));
    for (a, b, k) in [(1, "x", 2), (2, "y", 1), (3, "z", 4)] {
        r.insert(
            Tuple::new([("a", Value::Int(a)), ("b", Value::from(b))]),
            Integers::new(k),
        );
    }
    let mut e = KRelation::empty(Schema::new(["s", "t"]));
    for (s, t) in [(0, 1), (1, 2), (2, 3)] {
        e.insert(
            Tuple::new([("s", Value::Int(s)), ("t", Value::Int(t))]),
            Integers::new(1),
        );
    }
    let mut f = KRelation::empty(Schema::new(["g", "v"]));
    for i in 0..N_FACTS {
        f.insert(
            Tuple::new([
                ("g", Value::Int(i)),
                ("v", Value::from(format!("w{}", i % N_TAGS).as_str())),
            ]),
            Integers::new(1 + i % 3),
        );
    }
    Database::new().with("R", r).with("E", e).with("F", f)
}

fn reply_epoch(line: &str, response: &Response) -> u64 {
    match response {
        Response::Rows { epoch, .. }
        | Response::Committed { epoch, .. }
        | Response::Defined { epoch, .. }
        | Response::Dropped { epoch, .. } => *epoch,
        other => panic!("{line:?} unexpectedly failed: {}", other.render()),
    }
}

/// Handles `line`, logs the `(epoch, request, reply)` triple, and returns
/// the in-handler wall time in seconds.
fn run_logged(session: &mut Session<Integers>, line: String, log: &mut Vec<LogEntry>) -> f64 {
    let started = Instant::now();
    let response = session.handle_line(&line);
    let seconds = started.elapsed().as_secs_f64();
    let epoch = reply_epoch(&line, &response);
    log.push((epoch, line, response.render()));
    seconds
}

fn writer_workload(service: &Service<Integers>, writer: usize) -> Vec<LogEntry> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + writer as u64);
    let mut session = service.session();
    let mut log = Vec::new();
    let mut view_defined = false;
    for round in 0..COMMITS_PER_WRITER {
        if round % 10 == 5 {
            // Exercise catalog changes mid-flight: a per-writer standing
            // view that readers never query, toggled on and off.
            let line = if view_defined {
                format!("DROP W{writer}")
            } else {
                format!("DEFINE W{writer} = select[a != 1] R")
            };
            view_defined = !view_defined;
            run_logged(&mut session, line, &mut log);
            continue;
        }
        let mut items = Vec::new();
        let batch_size = rng.gen_range(1usize..=3);
        for _ in 0..batch_size {
            match rng.gen_range(0usize..3) {
                0 => {
                    let a = rng.gen_range(1i64..=9);
                    let b = ["x", "y", "z", "w"][rng.gen_range(0usize..4)];
                    let count = [-2i64, -1, 1, 1, 2, 3][rng.gen_range(0usize..6)];
                    items.push(format!("R({a}, '{b}')={count}"));
                }
                1 => {
                    let s = rng.gen_range(0i64..N_NODES - 1);
                    let t = rng.gen_range(s + 1..N_NODES);
                    let count = [-1i64, 1, 1, 2][rng.gen_range(0usize..4)];
                    items.push(format!("E({s}, {t})={count}"));
                }
                // Commits into the batch-resident relation: each one
                // *patches* F's cached columnar conversion forward.
                _ => {
                    let g = rng.gen_range(0i64..N_FACTS);
                    let tag = rng.gen_range(0i64..N_TAGS);
                    let count = [-1i64, 1, 1, 2][rng.gen_range(0usize..4)];
                    items.push(format!("F({g}, 'w{tag}')={count}"));
                }
            }
        }
        run_logged(
            &mut session,
            format!("COMMIT {}", items.join("; ")),
            &mut log,
        );
    }
    log
}

fn reader_workload(service: &Service<Integers>, reader: usize) -> (Vec<LogEntry>, ReadTiming) {
    let mut rng = StdRng::seed_from_u64(0xBEEF + reader as u64);
    let mut session = service.session();
    let mut log = Vec::new();
    let mut timing = ReadTiming::default();
    for _ in 0..QUERIES_PER_READER {
        let line = match rng.gen_range(0usize..12) {
            0 => "READ R".to_string(),
            1 => "QUERY R".to_string(),
            2 => "QUERY project[a] R".to_string(),
            3 => format!("QUERY select[a != {}] R", rng.gen_range(1i64..=4)),
            4 => "QUERY project[t] E join rename[t -> s] project[t] E".to_string(),
            5 => "VIEW V".to_string(),
            6 => "READ E".to_string(),
            7 => "DATALOG path(x, y) :- E(x, y). path(x, z) :- path(x, y), E(y, z). ? path"
                .to_string(),
            // Batch-engine traffic: F is past the auto threshold, so these
            // scans serve from the snapshot's columnar cache (hit after
            // the first conversion per relation version, patched across
            // commits rather than invalidated).
            8 | 9 => format!("QUERY select[v = 'w{}'] F", rng.gen_range(0i64..N_TAGS)),
            10 => format!(
                "QUERY project[g] select[v = 'w{}'] F",
                rng.gen_range(0i64..N_TAGS)
            ),
            _ => format!("QUERY select[g = {}] F", rng.gen_range(0i64..N_FACTS)),
        };
        let seconds = run_logged(&mut session, line.clone(), &mut log);
        timing.record(&line, seconds);
    }
    (log, timing)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    // --- Phase 1: concurrent load against a live-committing database. ---
    let service = Service::new(seed_db());
    let mut setup_log = Vec::new();
    run_logged(
        &mut service.session(),
        "DEFINE V = project[a] select[b != 'y'] R".to_string(),
        &mut setup_log,
    );

    let started = Instant::now();
    let (mut write_log, read_logs, timing) = std::thread::scope(|scope| {
        let service = &service;
        let writers: Vec<_> = (0..N_WRITERS)
            .map(|w| scope.spawn(move || writer_workload(service, w)))
            .collect();
        let readers: Vec<_> = (0..N_READERS)
            .map(|r| scope.spawn(move || reader_workload(service, r)))
            .collect();
        let mut write_log = setup_log;
        for handle in writers {
            write_log.extend(handle.join().expect("writer panicked"));
        }
        let mut timing = ReadTiming::default();
        let read_logs: Vec<Vec<LogEntry>> = readers
            .into_iter()
            .map(|handle| {
                let (log, reader_timing) = handle.join().expect("reader panicked");
                timing.merge(&reader_timing);
                log
            })
            .collect();
        (write_log, read_logs, timing)
    });
    let elapsed = started.elapsed().as_secs_f64();

    let queries: usize = read_logs.iter().map(Vec::len).sum();
    let commits = write_log.len();
    let final_epoch = service.shared().epoch();
    let batch = service.shared().snapshot().batch_cache_stats();
    println!(
        "concurrent phase: {queries} queries across {N_READERS} readers, \
         {commits} catalog ops across {N_WRITERS} writers (+setup), \
         {final_epoch} epochs, {elapsed:.3}s"
    );
    println!(
        "batch cache: {} hits, {} misses, {} patches, {} live entries",
        batch.hits, batch.misses, batch.patches, batch.entries
    );
    assert!(
        batch.hits > batch.misses + batch.patches,
        "batch-cache hits must dominate: {batch:?}"
    );

    // --- Phase 2: single-file replay on a fresh service. ---
    write_log.sort_by_key(|(epoch, _, _)| *epoch);
    for (i, (epoch, line, _)) in write_log.iter().enumerate() {
        assert_eq!(
            *epoch,
            i as u64 + 1,
            "epochs must be contiguous, but op {line:?} published epoch {epoch}"
        );
    }

    let replay = Service::new(seed_db());
    let mut replay_writer = replay.session();
    let mut snapshots: Vec<DbSnapshot<Integers>> = vec![replay.shared().snapshot()];
    let mut mismatches = 0usize;
    for (epoch, line, expected) in &write_log {
        let rendered = replay_writer.handle_line(line).render();
        if rendered != *expected {
            mismatches += 1;
            eprintln!("WRITE MISMATCH at epoch {epoch}: {line}\n  concurrent: {expected}\n  replay:     {rendered}");
        }
        let snapshot = replay.shared().snapshot();
        assert_eq!(snapshot.epoch(), *epoch, "replay epoch drift at {line:?}");
        snapshots.push(snapshot);
    }

    let mut replay_reader = replay.session();
    for log in &read_logs {
        for (epoch, line, expected) in log {
            replay_reader.pin_to(snapshots[*epoch as usize].clone());
            let rendered = replay_reader.handle_line(line).render();
            if rendered != *expected {
                mismatches += 1;
                eprintln!("READ MISMATCH at epoch {epoch}: {line}\n  concurrent: {expected}\n  replay:     {rendered}");
            }
        }
    }

    let qps = queries as f64 / elapsed;
    // Per-category service rates from the summed in-handler time across
    // reader threads: requests / thread-seconds. Datalog fixpoints are far
    // heavier than the relational lookups, so they get their own number
    // instead of disappearing into the wall-clock average.
    let datalog_qps = timing.datalog_queries as f64 / timing.datalog_seconds.max(f64::EPSILON);
    let relational_qps =
        timing.relational_queries as f64 / timing.relational_seconds.max(f64::EPSILON);
    println!("replay phase: {mismatches} mismatches over {queries} queries + {commits} ops");
    println!(
        "throughput: {qps:.0} queries/s wall-clock \
         ({} datalog at {datalog_qps:.0}/s, {} relational at {relational_qps:.0}/s per thread)",
        timing.datalog_queries, timing.relational_queries
    );

    let json = format!(
        "{{\n  \"benchmark\": \"concurrent_query_service\",\n  \"readers\": {N_READERS},\n  \"writers\": {N_WRITERS},\n  \"queries\": {queries},\n  \"catalog_ops\": {commits},\n  \"epochs\": {final_epoch},\n  \"elapsed_seconds\": {elapsed:.6},\n  \"queries_per_second\": {qps:.1},\n  \"datalog_queries\": {},\n  \"datalog_queries_per_second\": {datalog_qps:.1},\n  \"relational_queries\": {},\n  \"relational_queries_per_second\": {relational_qps:.1},\n  \"batch_cache_hits\": {},\n  \"batch_cache_misses\": {},\n  \"batch_cache_patches\": {},\n  \"replay_mismatches\": {mismatches}\n}}\n",
        timing.datalog_queries, timing.relational_queries, batch.hits, batch.misses, batch.patches
    );
    std::fs::write(&out_path, json).expect("write benchmark record");
    println!("wrote {out_path}");

    assert_eq!(
        mismatches, 0,
        "concurrent execution diverged from serial replay"
    );
}

//! TCP front-end: a thread-per-connection line server over [`Service`].
//!
//! Each connection gets its own [`crate::service::Session`] — its own pin
//! state — while all connections share the snapshot store and plan cache.
//! The protocol is strictly line-oriented: one request line in, one
//! response line out, so any line client (`nc`, a shell loop, the
//! [`Client`] helper) works.

use crate::service::Service;
use crate::wire::WireSemiring;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: the bound address plus a shutdown handle. Dropping the
/// handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with `addr == "…:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Connections
    /// already established keep their sessions until the client hangs up.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it with a connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `service` until the
/// returned handle is shut down. One thread per connection; sessions never
/// panic on client input (failures are structured `err` replies).
pub fn serve<K: WireSemiring + 'static>(
    service: Service<K>,
    addr: &str,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let service = service.clone();
            std::thread::spawn(move || {
                let _ = serve_connection(&service, stream);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn serve_connection<K: WireSemiring>(service: &Service<K>, stream: TcpStream) -> io::Result<()> {
    let mut session = service.session();
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        let response = session.handle_line(&line);
        writer.write_all(response.render().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if matches!(response, crate::protocol::Response::Bye) {
            break;
        }
    }
    Ok(())
}

/// A minimal blocking client for tests and examples: send a line, read the
/// reply line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request line and reads the one response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

//! Epoch-keyed plan cache.
//!
//! Plans are cached under `(catalog epoch, normalized query text)`. The
//! epoch component is not an optimization knob — it is **semantically
//! required**: the [`provsem_core::Catalog`] carries relation cardinalities
//! that drive join ordering, so a plan built at epoch *e* may be the wrong
//! plan (or reference a since-dropped relation) at epoch *e+1*. Keying by
//! epoch makes every commit an implicit cache invalidation, with no
//! invalidation protocol to get wrong.
//!
//! The normalized-text component (from [`crate::ra_parse::normalize`])
//! makes the cache insensitive to client whitespace and redundant
//! parentheses: syntactically different spellings of the same expression
//! hit the same entry.

use provsem_core::Plan;
use provsem_semiring::fxhash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Hit/miss counters, readable while sessions run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A concurrent plan cache shared by every session of a service.
///
/// Entries from stale epochs are evicted lazily: whenever an insert observes
/// a newer epoch than the cache has seen, all older-epoch entries are
/// dropped (they can never be hit again — sessions always look up at their
/// snapshot's epoch, and snapshots only move forward).
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<FxHashMap<(u64, String), Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Looks up the plan for `normalized` at `epoch`, building and caching
    /// it with `build` on a miss. Returns the plan and whether it was a hit.
    /// `build` runs outside the cache lock; on races the first insert wins.
    pub fn get_or_plan<E>(
        &self,
        epoch: u64,
        normalized: &str,
        build: impl FnOnce() -> Result<Plan, E>,
    ) -> Result<(Arc<Plan>, bool), E> {
        let key = (epoch, normalized.to_string());
        if let Some(plan) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(plan), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build()?);
        let mut plans = self.lock();
        if plans.keys().all(|(e, _)| *e < epoch) {
            plans.retain(|(e, _), _| *e >= epoch);
        }
        let entry = plans.entry(key).or_insert_with(|| Arc::clone(&plan));
        Ok((Arc::clone(entry), false))
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<(u64, String), Arc<Plan>>> {
        self.plans.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provsem_core::{Catalog, RaExpr};

    fn plan_r(catalog: &Catalog) -> Plan {
        Plan::new(&RaExpr::Relation("R".to_string()), catalog).unwrap()
    }

    fn catalog_r() -> Catalog {
        Catalog::new().with("R", provsem_core::Schema::new(["a", "b"]), 4)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new();
        let catalog = catalog_r();
        let (first, hit) = cache
            .get_or_plan::<()>(0, "R", || Ok(plan_r(&catalog)))
            .unwrap();
        assert!(!hit);
        let (second, hit) = cache
            .get_or_plan::<()>(0, "R", || panic!("must not replan"))
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn epoch_bump_misses_and_evicts_stale_entries() {
        let cache = PlanCache::new();
        let catalog = catalog_r();
        cache
            .get_or_plan::<()>(0, "R", || Ok(plan_r(&catalog)))
            .unwrap();
        let (_, hit) = cache
            .get_or_plan::<()>(1, "R", || Ok(plan_r(&catalog)))
            .unwrap();
        assert!(!hit, "a commit must invalidate cached plans");
        assert_eq!(cache.stats().entries, 1, "epoch-0 entry evicted");
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = PlanCache::new();
        let catalog = catalog_r();
        assert_eq!(
            cache.get_or_plan(0, "R", || Err("nope")).unwrap_err(),
            "nope"
        );
        let (_, hit) = cache
            .get_or_plan::<()>(0, "R", || Ok(plan_r(&catalog)))
            .unwrap();
        assert!(!hit);
    }
}

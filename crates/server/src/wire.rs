//! Wire representation of values and annotations.
//!
//! The line protocol is text; this module fixes the canonical text forms.
//! Values render unambiguously — integers bare, strings always
//! single-quoted — so a rendered response re-parses to the same values, and
//! byte-equality of responses is exactly value-and-annotation equality
//! (what the differential harness pins).
//!
//! Annotations cross the wire as **signed counts**: the client writes
//! `R(a,b)=3` (insert three derivations) or `R(a,b)=-1` (retract one), and
//! [`WireSemiring::from_wire_count`] embeds the count into the session's
//! semiring. Semirings without additive inverses reject negative counts
//! with a structured error instead of panicking — ℤ-relations (PR 6) are
//! the semiring where deletions are first-class, exactly as in Green et
//! al.'s follow-up work on reconcilable differences.

use provsem_core::Value;
use provsem_semiring::ring::Integers;
use provsem_semiring::{Natural, Semiring};

/// A semiring whose annotations can cross the text protocol: parsed from
/// signed wire counts and rendered canonically. `Send + Sync` because
/// sessions run on server threads and share the snapshot store.
pub trait WireSemiring: Semiring + Send + Sync {
    /// Embeds a signed wire count. Semirings without additive inverses
    /// reject negative counts with a human-readable reason (returned to the
    /// client as a structured `annotation` error).
    fn from_wire_count(count: i64) -> Result<Self, String>;

    /// Canonical text form of an annotation, used in `... @ k` row output.
    fn render_annotation(&self) -> String;
}

impl WireSemiring for Integers {
    fn from_wire_count(count: i64) -> Result<Self, String> {
        Ok(Integers(count))
    }

    fn render_annotation(&self) -> String {
        self.0.to_string()
    }
}

impl WireSemiring for Natural {
    fn from_wire_count(count: i64) -> Result<Self, String> {
        u64::try_from(count).map(Natural).map_err(|_| {
            format!(
                "negative count {count} needs a ring-annotated session (ℕ has no additive inverses); \
                 serve over ℤ to make deletions first-class"
            )
        })
    }

    fn render_annotation(&self) -> String {
        self.0.to_string()
    }
}

/// Canonical text form of a [`Value`]: integers bare, strings always
/// single-quoted with `'` escaped by doubling (`''`), so rendering is
/// injective and [`parse_value`] inverts it.
pub fn render_value(value: &Value) -> String {
    match value {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('\'');
            for ch in s.chars() {
                if ch == '\'' {
                    out.push('\'');
                }
                out.push(ch);
            }
            out.push('\'');
            out
        }
    }
}

/// Parses one value token: `-?[0-9]+` is an integer, `'...'` (with `''`
/// escaping an inner quote) is a string, and a bare identifier is a string
/// constant too (matching the datalog syntax, where quoting is only needed
/// for strings that are not identifiers).
pub fn parse_value(token: &str) -> Result<Value, String> {
    let token = token.trim();
    if token.is_empty() {
        return Err("empty value".to_string());
    }
    if token.starts_with('\'') {
        if token.len() < 2 || !token.ends_with('\'') {
            return Err(format!("unterminated quoted value: {token}"));
        }
        let inner = &token[1..token.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(ch) = chars.next() {
            if ch == '\'' {
                match chars.next() {
                    Some('\'') => out.push('\''),
                    _ => return Err(format!("stray quote inside quoted value: {token}")),
                }
            } else {
                out.push(ch);
            }
        }
        return Ok(Value::from(out));
    }
    if token
        .chars()
        .all(|c| c.is_ascii_digit() || c == '-' || c == '+')
    {
        return token
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| format!("bad integer value {token}: {e}"));
    }
    if token.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Ok(Value::from(token));
    }
    Err(format!(
        "bad value {token}: use an integer, an identifier, or a 'quoted string'"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        for v in [
            Value::Int(0),
            Value::Int(-7),
            Value::from("plain"),
            Value::from("with space"),
            Value::from("it's"),
            Value::from(""),
        ] {
            assert_eq!(parse_value(&render_value(&v)).unwrap(), v);
        }
    }

    #[test]
    fn bare_identifiers_are_strings_and_digits_are_ints() {
        assert_eq!(parse_value("abc").unwrap(), Value::from("abc"));
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-3").unwrap(), Value::Int(-3));
        assert_eq!(parse_value("'42'").unwrap(), Value::from("42"));
        assert!(parse_value("a b").is_err());
        assert!(parse_value("'open").is_err());
    }

    #[test]
    fn natural_rejects_negative_counts() {
        assert_eq!(Natural::from_wire_count(2).unwrap(), Natural(2));
        let err = Natural::from_wire_count(-1).unwrap_err();
        assert!(err.contains("additive inverses"), "{err}");
        assert_eq!(Integers::from_wire_count(-1).unwrap(), Integers(-1));
    }
}

//! Text syntax for RA⁺ expressions — the `QUERY`/`DEFINE` side of the line
//! protocol.
//!
//! ```text
//! expr   := term ('union' term)*
//! term   := factor ('join' factor)*
//! factor := 'project' '[' attr (',' attr)* ']' factor
//!         | 'select' '[' pred ']' factor
//!         | 'rename' '[' attr '->' attr (',' attr '->' attr)* ']' factor
//!         | '(' expr ')'
//!         | relation-name
//! pred   := conj ('or' conj)*
//! conj   := atom ('and' atom)*
//! atom   := 'true' | 'false' | '(' pred ')'
//!         | attr '==' attr        -- attribute equality
//!         | attr '!=' value      -- attribute ≠ constant
//!         | attr '=' value       -- attribute = constant
//! ```
//!
//! Values follow [`crate::wire::parse_value`]: integers bare, strings as
//! identifiers or `'quoted'`. Keywords are lowercase; relation and
//! attribute names are case-sensitive identifiers.
//!
//! [`normalize`] renders a parsed expression back to a canonical text form
//! (fixed spacing, explicit parentheses, quoted strings) — the **plan-cache
//! key**: two query strings that parse to the same expression normalize
//! identically, so they share one cached plan per epoch.

use crate::wire::{parse_value, render_value};
use provsem_core::Value;
use provsem_core::{Predicate, RaExpr, Renaming, Schema};
use std::fmt;

/// A syntax error, with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RaParseError {
    /// Byte position in the input where parsing failed.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RaParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RaParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(String),
    Quoted(String),
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Arrow,
    EqEq,
    Ne,
    Eq,
}

struct Lexer {
    tokens: Vec<(usize, Tok)>,
    end: usize,
}

fn lex(text: &str) -> Result<Lexer, RaParseError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '[' => {
                tokens.push((i, Tok::LBracket));
                i += 1;
            }
            ']' => {
                tokens.push((i, Tok::RBracket));
                i += 1;
            }
            '(' => {
                tokens.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                tokens.push((i, Tok::Comma));
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                tokens.push((i, Tok::Arrow));
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push((i, Tok::EqEq));
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push((i, Tok::Ne));
                i += 2;
            }
            '=' => {
                tokens.push((i, Tok::Eq));
                i += 1;
            }
            '\'' => {
                // Scan to the closing quote, honoring '' escapes.
                let start = i;
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(RaParseError {
                                position: start,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => j += 2,
                        Some(b'\'') => break,
                        Some(_) => j += 1,
                    }
                }
                tokens.push((start, Tok::Quoted(text[start..=j].to_string())));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                tokens.push((start, Tok::Int(text[start..i].to_string())));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push((start, Tok::Ident(text[start..i].to_string())));
            }
            other => {
                return Err(RaParseError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(Lexer {
        tokens,
        end: text.len(),
    })
}

struct Parser {
    lexer: Lexer,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.lexer.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.lexer
            .tokens
            .get(self.pos)
            .map(|(at, _)| *at)
            .unwrap_or(self.lexer.end)
    }

    fn error(&self, message: impl Into<String>) -> RaParseError {
        RaParseError {
            position: self.here(),
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let tok = self.lexer.tokens.get(self.pos).map(|(_, t)| t.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), RaParseError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    /// Is the next token the given (lowercase) keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(id)) if id == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, RaParseError> {
        match self.peek() {
            Some(Tok::Ident(id)) => {
                let id = id.clone();
                self.pos += 1;
                Ok(id)
            }
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    fn value(&mut self) -> Result<Value, RaParseError> {
        let at = self.here();
        match self.bump() {
            Some(Tok::Ident(id)) => Ok(Value::from(id)),
            Some(Tok::Int(digits)) => parse_value(&digits).map_err(|message| RaParseError {
                position: at,
                message,
            }),
            Some(Tok::Quoted(raw)) => parse_value(&raw).map_err(|message| RaParseError {
                position: at,
                message,
            }),
            _ => Err(RaParseError {
                position: at,
                message: "expected a value".to_string(),
            }),
        }
    }

    fn expr(&mut self) -> Result<RaExpr, RaParseError> {
        let mut left = self.term()?;
        while self.eat_keyword("union") {
            let right = self.term()?;
            left = RaExpr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<RaExpr, RaParseError> {
        let mut left = self.factor()?;
        while self.eat_keyword("join") {
            let right = self.factor()?;
            left = RaExpr::Join(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<RaExpr, RaParseError> {
        if self.eat_keyword("project") {
            self.expect(Tok::LBracket, "'[' after project")?;
            let mut attrs = vec![self.ident("attribute name")?];
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                attrs.push(self.ident("attribute name")?);
            }
            self.expect(Tok::RBracket, "']' closing the projection list")?;
            let input = self.factor()?;
            return Ok(RaExpr::Project(Schema::new(attrs), Box::new(input)));
        }
        if self.eat_keyword("select") {
            self.expect(Tok::LBracket, "'[' after select")?;
            let pred = self.pred()?;
            self.expect(Tok::RBracket, "']' closing the selection predicate")?;
            let input = self.factor()?;
            return Ok(RaExpr::Select(pred, Box::new(input)));
        }
        if self.eat_keyword("rename") {
            self.expect(Tok::LBracket, "'[' after rename")?;
            let mut pairs = Vec::new();
            loop {
                let from = self.ident("attribute name")?;
                self.expect(Tok::Arrow, "'->' in renaming")?;
                let to = self.ident("attribute name")?;
                pairs.push((from, to));
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(Tok::RBracket, "']' closing the renaming list")?;
            let input = self.factor()?;
            return Ok(RaExpr::Rename(Renaming::new(pairs), Box::new(input)));
        }
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let inner = self.expr()?;
            self.expect(Tok::RParen, "')'")?;
            return Ok(inner);
        }
        let name = self.ident("a relation name or operator")?;
        for reserved in ["project", "select", "rename", "join", "union"] {
            if name == reserved {
                return Err(self.error(format!("misplaced keyword {reserved}")));
            }
        }
        Ok(RaExpr::Relation(name))
    }

    fn pred(&mut self) -> Result<Predicate, RaParseError> {
        let mut left = self.conj()?;
        while self.eat_keyword("or") {
            let right = self.conj()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conj(&mut self) -> Result<Predicate, RaParseError> {
        let mut left = self.atom()?;
        while self.eat_keyword("and") {
            let right = self.atom()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Predicate, RaParseError> {
        if self.eat_keyword("true") {
            return Ok(Predicate::True);
        }
        if self.eat_keyword("false") {
            return Ok(Predicate::False);
        }
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let inner = self.pred()?;
            self.expect(Tok::RParen, "')'")?;
            return Ok(inner);
        }
        let attr = self.ident("an attribute name")?;
        match self.bump() {
            Some(Tok::EqEq) => {
                let other = self.ident("an attribute name after '=='")?;
                Ok(Predicate::eq_attrs(attr, other))
            }
            Some(Tok::Eq) => Ok(Predicate::eq_value(attr, self.value()?)),
            Some(Tok::Ne) => Ok(Predicate::ne_value(attr, self.value()?)),
            _ => Err(self.error("expected '=', '!=' or '==' in predicate")),
        }
    }
}

/// Parses one RA⁺ expression; the whole input must be consumed.
pub fn parse_ra(text: &str) -> Result<RaExpr, RaParseError> {
    let mut parser = Parser {
        lexer: lex(text)?,
        pos: 0,
    };
    let expr = parser.expr()?;
    if parser.peek().is_some() {
        return Err(parser.error("trailing input after expression"));
    }
    Ok(expr)
}

/// Canonical text rendering of an expression: fixed spacing, explicit
/// parentheses around every union/join, strings quoted. `normalize(parse_ra
/// (s))` is a strict normal form — whitespace and redundant parentheses in
/// `s` do not affect it — which is what makes it the plan-cache key.
pub fn normalize(expr: &RaExpr) -> String {
    match expr {
        RaExpr::Relation(name) => name.clone(),
        RaExpr::Empty(schema) => format!("empty[{}]", join_attrs(schema)),
        RaExpr::Union(a, b) => format!("({} union {})", normalize(a), normalize(b)),
        RaExpr::Join(a, b) => format!("({} join {})", normalize(a), normalize(b)),
        RaExpr::Project(schema, input) => {
            format!("project[{}] {}", join_attrs(schema), normalize(input))
        }
        RaExpr::Select(pred, input) => {
            format!("select[{}] {}", render_pred(pred), normalize(input))
        }
        RaExpr::Rename(renaming, input) => {
            let pairs: Vec<String> = renaming
                .pairs()
                .map(|(from, to)| format!("{}->{}", from.name(), to.name()))
                .collect();
            format!("rename[{}] {}", pairs.join(", "), normalize(input))
        }
    }
}

fn join_attrs(schema: &Schema) -> String {
    schema
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn render_pred(pred: &Predicate) -> String {
    match pred {
        Predicate::True => "true".to_string(),
        Predicate::False => "false".to_string(),
        Predicate::AttrEqValue(a, v) => format!("{} = {}", a.name(), render_value(v)),
        Predicate::AttrNeValue(a, v) => format!("{} != {}", a.name(), render_value(v)),
        Predicate::AttrEqAttr(a, b) => format!("{} == {}", a.name(), b.name()),
        Predicate::And(p, q) => format!("({} and {})", render_pred(p), render_pred(q)),
        Predicate::Or(p, q) => format!("({} or {})", render_pred(p), render_pred(q)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query_shape() {
        let q = parse_ra(
            "project[a, c] (project[a, b] R join project[b, c] R) \
             union project[a, c] R join project[b, c] R",
        )
        .unwrap();
        assert_eq!(q.base_relations(), vec!["R".to_string()]);
    }

    #[test]
    fn normalization_is_whitespace_insensitive() {
        let a = parse_ra("select[ x = 1 and y != 'v' ]  ( R join S )").unwrap();
        let b = parse_ra("select[x=1 and y!='v'](R join S)").unwrap();
        assert_eq!(a, b);
        assert_eq!(normalize(&a), normalize(&b));
        // And normalization round-trips through the parser.
        assert_eq!(parse_ra(&normalize(&a)).unwrap(), a);
    }

    #[test]
    fn precedence_join_binds_tighter_than_union() {
        let q = parse_ra("A union B join C").unwrap();
        assert_eq!(normalize(&q), "(A union (B join C))");
        let q = parse_ra("(A union B) join C").unwrap();
        assert_eq!(normalize(&q), "((A union B) join C)");
    }

    #[test]
    fn predicate_forms_round_trip() {
        let q = parse_ra("select[(a = 1 or b == c) and d != 'x''y'] R").unwrap();
        let normal = normalize(&q);
        assert_eq!(parse_ra(&normal).unwrap(), q);
        assert!(normal.contains("'x''y'"), "{normal}");
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_ra("project[a R").unwrap_err();
        assert!(err.message.contains("']'"), "{err}");
        assert!(err.position > 0);
        assert!(parse_ra("R extra")
            .unwrap_err()
            .message
            .contains("trailing"));
        assert!(parse_ra("").is_err());
        assert!(parse_ra("select[a ~ 1] R").is_err());
    }
}

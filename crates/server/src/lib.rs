//! A concurrent query service over provenance-semiring databases.
//!
//! This crate turns the paper's machinery — K-relations, RA⁺ plans, datalog
//! fixpoints, incremental view maintenance — into a long-lived service:
//!
//! * [`service::Service`] serves one [`provsem_core::SharedDatabase`]:
//!   readers run against immutable epoch-stamped snapshots, writers commit
//!   delta batches that advance every standing view before publishing.
//! * [`protocol`] defines the line protocol (`QUERY`, `DATALOG`, `COMMIT`,
//!   `DEFINE`/`DROP`/`VIEW`, `PIN`/`UNPIN`, …) with canonical, byte-stable
//!   response rendering, and every failure surfaced as a structured `err`
//!   reply.
//! * [`cache::PlanCache`] caches plans keyed by *(catalog epoch, normalized
//!   query)* — commits invalidate implicitly, because a plan built against
//!   epoch *e*'s catalog (cardinalities included) is only valid at *e*.
//! * [`tcp`] is a thread-per-connection front-end; `examples/
//!   load_generator.rs` is a stress-and-differential driver that pins
//!   concurrent execution against single-threaded replay.
//!
//! The epoch-in-every-reply design is what makes the service *testable*:
//! a recorded concurrent run can be replayed serially by pinning each
//! request to the epoch its original reply reported, and the rendered
//! response bytes must be identical.

#![warn(missing_docs)]

pub mod cache;
pub mod protocol;
pub mod ra_parse;
pub mod service;
pub mod tcp;
pub mod wire;

/// Convenience prelude re-exporting the most commonly used items.
pub mod prelude {
    pub use crate::cache::{CacheStats, PlanCache};
    pub use crate::protocol::{CommitItem, ErrorKind, Request, Response};
    pub use crate::ra_parse::{normalize, parse_ra, RaParseError};
    pub use crate::service::{Service, Session};
    pub use crate::tcp::{serve, Client, ServerHandle};
    pub use crate::wire::{parse_value, render_value, WireSemiring};
}

pub use prelude::*;

//! The line protocol: one request line in, one response line out.
//!
//! Requests start with a command word (case-insensitive); everything after
//! it is command-specific text. Responses start with `ok` or `err`, and
//! **every** failure surfaces as a structured `err <kind>: <message>` reply
//! — a protocol error never kills the session or the connection.
//!
//! Row-bearing responses carry the epoch of the snapshot they were computed
//! against and render rows in the relation's sorted tuple order, using the
//! canonical value forms of [`crate::wire`]. That makes rendered responses
//! **byte-comparable**: the differential harness replays a recorded session
//! serially and asserts byte-equality of every reply. For the same reason
//! the rendering deliberately omits plan-cache hit/miss status (a replay
//! has a cold cache); cache behavior is observable through the structured
//! [`Response::Rows::cached`] field and the `STATS` command instead.
//!
//! ```text
//! PING | EPOCH | PIN | UNPIN | STATS | BYE
//! QUERY <ra-expression>
//! DATALOG <rules> ? <goal-predicate>
//! COMMIT R(1, 'x')=2; S(a, b)=-1
//! DEFINE <view-name> = <ra-expression>
//! DROP <view-name>
//! VIEW <view-name>
//! READ <relation-name>
//! ```

use crate::wire::{parse_value, render_value};
use provsem_core::Value;
use std::fmt;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Report the current catalog epoch.
    Epoch,
    /// Pin the session to the current snapshot (repeatable reads).
    Pin,
    /// Release the pin; subsequent reads see the latest snapshot.
    Unpin,
    /// Plan-cache and catalog statistics.
    Stats,
    /// End the session.
    Bye,
    /// Evaluate an RA⁺ expression.
    Query(String),
    /// Evaluate a datalog program and report the goal predicate's facts.
    Datalog {
        /// The rule text (standard `head :- body.` syntax).
        program: String,
        /// The predicate whose fixpoint facts to return.
        goal: String,
    },
    /// Atomically apply a batch of annotated tuple deltas.
    Commit(Vec<CommitItem>),
    /// Register a standing (incrementally maintained) view.
    Define {
        /// View name.
        name: String,
        /// Defining RA⁺ expression text.
        expr: String,
    },
    /// Drop a standing view.
    Drop(String),
    /// Read a standing view's maintained contents.
    View(String),
    /// Read a base relation.
    Read(String),
}

/// One delta in a `COMMIT`: `relation(values...)=count`.
#[derive(Clone, Debug, PartialEq)]
pub struct CommitItem {
    /// Target base relation.
    pub relation: String,
    /// Tuple values, positionally matching the relation's schema.
    pub values: Vec<Value>,
    /// Signed multiplicity delta (negative = retraction, ring-only).
    pub count: i64,
}

/// Machine-readable error category, rendered as the token after `err`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Request or expression syntax error.
    Parse,
    /// A named base relation does not exist at this snapshot.
    UnknownRelation,
    /// A named standing view does not exist at this snapshot.
    UnknownView,
    /// Union operands disagree on schema.
    Schema,
    /// Projection onto attributes the input does not produce.
    Projection,
    /// Non-injective renaming.
    Renaming,
    /// A committed tuple's arity does not match the relation schema.
    Arity,
    /// An annotation count the session's semiring cannot represent.
    Annotation,
    /// The datalog program is not range-restricted (unsafe).
    UnsafeProgram,
    /// Datalog evaluation hit the round bound without converging.
    NotConverged,
    /// Anything else wrong with the request itself.
    Protocol,
}

impl ErrorKind {
    fn token(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::UnknownRelation => "unknown_relation",
            ErrorKind::UnknownView => "unknown_view",
            ErrorKind::Schema => "schema",
            ErrorKind::Projection => "projection",
            ErrorKind::Renaming => "renaming",
            ErrorKind::Arity => "arity",
            ErrorKind::Annotation => "annotation",
            ErrorKind::UnsafeProgram => "unsafe",
            ErrorKind::NotConverged => "not_converged",
            ErrorKind::Protocol => "protocol",
        }
    }
}

/// A structured reply; [`Response::render`] is the wire form.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to `PING`.
    Pong,
    /// Current catalog epoch.
    Epoch(u64),
    /// Session pinned at this epoch.
    Pinned(u64),
    /// Pin released; reads now track the live snapshot (at this epoch).
    Unpinned(u64),
    /// A commit was applied, producing this epoch.
    Committed {
        /// Epoch the commit published.
        epoch: u64,
        /// Number of deltas applied.
        changes: usize,
    },
    /// A standing view was registered.
    Defined {
        /// View name.
        name: String,
        /// Epoch the catalog change published.
        epoch: u64,
    },
    /// A standing view was dropped.
    Dropped {
        /// View name.
        name: String,
        /// Epoch the catalog change published.
        epoch: u64,
    },
    /// Query / view / relation contents, in sorted tuple order.
    Rows {
        /// Epoch of the snapshot the rows were computed against.
        epoch: u64,
        /// Whether the plan came from the cache (`None` when no plan was
        /// involved). Deliberately **not** rendered — see the module docs.
        cached: Option<bool>,
        /// Column names (positional `c0, c1, …` for datalog goals).
        schema: Vec<String>,
        /// `(values, rendered annotation)` per row.
        rows: Vec<(Vec<Value>, String)>,
    },
    /// Reply to `STATS`.
    Stats {
        /// Current catalog epoch.
        epoch: u64,
        /// Plan-cache hits so far.
        hits: u64,
        /// Plan-cache misses so far.
        misses: u64,
        /// Plans currently cached.
        entries: usize,
        /// Standing views currently registered.
        views: usize,
        /// Storage-layer batch-cache hits (batch-engine scans served from a
        /// cached columnar conversion).
        batch_hits: u64,
        /// Batch-cache misses (scans that columnarized their relation).
        batch_misses: u64,
        /// Commit deltas absorbed by patching a cached conversion forward
        /// instead of invalidating it.
        batch_patches: u64,
    },
    /// Session closed.
    Bye,
    /// Any failure, as a structured reply.
    Error {
        /// Category token.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for errors.
    pub fn error(kind: ErrorKind, message: impl fmt::Display) -> Self {
        Response::Error {
            kind,
            message: message.to_string(),
        }
    }

    /// The canonical single-line wire form.
    pub fn render(&self) -> String {
        match self {
            Response::Pong => "ok pong".to_string(),
            Response::Epoch(e) => format!("ok epoch {e}"),
            Response::Pinned(e) => format!("ok pinned {e}"),
            Response::Unpinned(e) => format!("ok unpinned {e}"),
            Response::Committed { epoch, changes } => {
                format!("ok committed epoch={epoch} changes={changes}")
            }
            Response::Defined { name, epoch } => format!("ok defined {name} epoch={epoch}"),
            Response::Dropped { name, epoch } => format!("ok dropped {name} epoch={epoch}"),
            Response::Rows {
                epoch,
                cached: _,
                schema,
                rows,
            } => {
                let mut out = format!("ok rows epoch={epoch} [{}]", schema.join(", "));
                for (i, (values, annotation)) in rows.iter().enumerate() {
                    out.push_str(if i == 0 { " " } else { "; " });
                    out.push('(');
                    for (j, v) in values.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&render_value(v));
                    }
                    out.push_str(")@");
                    out.push_str(annotation);
                }
                out
            }
            Response::Stats {
                epoch,
                hits,
                misses,
                entries,
                views,
                batch_hits,
                batch_misses,
                batch_patches,
            } => format!(
                "ok stats epoch={epoch} hits={hits} misses={misses} entries={entries} views={views} \
                 batch_hits={batch_hits} batch_misses={batch_misses} batch_patches={batch_patches}"
            ),
            Response::Bye => "ok bye".to_string(),
            Response::Error { kind, message } => {
                // Keep the reply on one line whatever the message contains.
                let flat = message.replace('\n', " ");
                format!("err {}: {}", kind.token(), flat)
            }
        }
    }
}

impl Request {
    /// Parses one request line. Errors come back as `(kind, message)` so the
    /// session can turn them into structured replies.
    pub fn parse(line: &str) -> Result<Request, (ErrorKind, String)> {
        let line = line.trim();
        let (command, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let bare = |request: Request| {
            if rest.is_empty() {
                Ok(request)
            } else {
                Err((
                    ErrorKind::Protocol,
                    format!("{} takes no arguments", command.to_ascii_uppercase()),
                ))
            }
        };
        match command.to_ascii_uppercase().as_str() {
            "" => Err((ErrorKind::Protocol, "empty request".to_string())),
            "PING" => bare(Request::Ping),
            "EPOCH" => bare(Request::Epoch),
            "PIN" => bare(Request::Pin),
            "UNPIN" => bare(Request::Unpin),
            "STATS" => bare(Request::Stats),
            "BYE" => bare(Request::Bye),
            "QUERY" => {
                if rest.is_empty() {
                    Err((ErrorKind::Protocol, "QUERY needs an expression".to_string()))
                } else {
                    Ok(Request::Query(rest.to_string()))
                }
            }
            "DATALOG" => match rest.rsplit_once('?') {
                Some((program, goal)) if !goal.trim().is_empty() => Ok(Request::Datalog {
                    program: program.trim().to_string(),
                    goal: goal.trim().to_string(),
                }),
                _ => Err((
                    ErrorKind::Protocol,
                    "DATALOG needs `<rules> ? <goal-predicate>`".to_string(),
                )),
            },
            "COMMIT" if rest.is_empty() => Err((
                ErrorKind::Protocol,
                "COMMIT needs at least one `relation(values...)=count`".to_string(),
            )),
            "COMMIT" => parse_commit(rest)
                .map(Request::Commit)
                .map_err(|m| (ErrorKind::Parse, m)),
            "DEFINE" => match rest.split_once('=') {
                Some((name, expr)) if is_ident(name.trim()) && !expr.trim().is_empty() => {
                    Ok(Request::Define {
                        name: name.trim().to_string(),
                        expr: expr.trim().to_string(),
                    })
                }
                _ => Err((
                    ErrorKind::Protocol,
                    "DEFINE needs `<view-name> = <expression>`".to_string(),
                )),
            },
            "DROP" => name_arg(rest, "DROP").map(Request::Drop),
            "VIEW" => name_arg(rest, "VIEW").map(Request::View),
            "READ" => name_arg(rest, "READ").map(Request::Read),
            other => Err((ErrorKind::Protocol, format!("unknown command {other}"))),
        }
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit())
}

fn name_arg(rest: &str, command: &str) -> Result<String, (ErrorKind, String)> {
    if is_ident(rest) {
        Ok(rest.to_string())
    } else {
        Err((
            ErrorKind::Protocol,
            format!("{command} needs a single name"),
        ))
    }
}

/// Splits on `sep`, but not inside `'…'` string literals (where `''` is an
/// escaped quote).
fn split_outside_quotes(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c == '\'' {
            if in_quotes && matches!(chars.peek(), Some((_, '\''))) {
                chars.next();
            } else {
                in_quotes = !in_quotes;
            }
        } else if c == sep && !in_quotes {
            parts.push(&text[start..i]);
            start = i + c.len_utf8();
        }
    }
    parts.push(&text[start..]);
    parts
}

fn parse_commit(text: &str) -> Result<Vec<CommitItem>, String> {
    if text.trim().is_empty() {
        return Err("COMMIT needs at least one `relation(values...)=count`".to_string());
    }
    let mut items = Vec::new();
    for raw in split_outside_quotes(text, ';') {
        let item = raw.trim();
        if item.is_empty() {
            continue;
        }
        let open = item
            .find('(')
            .ok_or_else(|| format!("missing '(' in commit item {item}"))?;
        let relation = item[..open].trim();
        if !is_ident(relation) {
            return Err(format!("bad relation name in commit item {item}"));
        }
        // The ')' is the last one outside quotes; scan from the left.
        let body = &item[open + 1..];
        let mut in_quotes = false;
        let mut close = None;
        let mut chars = body.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            if c == '\'' {
                if in_quotes && matches!(chars.peek(), Some((_, '\''))) {
                    chars.next();
                } else {
                    in_quotes = !in_quotes;
                }
            } else if c == ')' && !in_quotes {
                close = Some(i);
                break;
            }
        }
        let close = close.ok_or_else(|| format!("missing ')' in commit item {item}"))?;
        let values = split_outside_quotes(&body[..close], ',')
            .into_iter()
            .map(parse_value)
            .collect::<Result<Vec<Value>, String>>()?;
        let tail = body[close + 1..].trim();
        let count = match tail.strip_prefix('=') {
            Some(count) => count
                .trim()
                .parse::<i64>()
                .map_err(|e| format!("bad count in commit item {item}: {e}"))?,
            None if tail.is_empty() => 1,
            None => return Err(format!("trailing input after ')' in commit item {item}")),
        };
        items.push(CommitItem {
            relation: relation.to_string(),
            values,
            count,
        });
    }
    if items.is_empty() {
        return Err("COMMIT needs at least one `relation(values...)=count`".to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_parse_case_insensitively() {
        assert_eq!(Request::parse("ping").unwrap(), Request::Ping);
        assert_eq!(Request::parse("  EPOCH  ").unwrap(), Request::Epoch);
        assert_eq!(
            Request::parse("query project[a] R").unwrap(),
            Request::Query("project[a] R".to_string())
        );
        assert_eq!(
            Request::parse("PING now").unwrap_err().0,
            ErrorKind::Protocol
        );
        assert_eq!(Request::parse("FLY").unwrap_err().0, ErrorKind::Protocol);
    }

    #[test]
    fn commit_items_honor_quoting_and_default_count() {
        let parsed = Request::parse("COMMIT R(1, 'a; b')=2; R(2, plain); S('it''s')=-1").unwrap();
        assert_eq!(
            parsed,
            Request::Commit(vec![
                CommitItem {
                    relation: "R".to_string(),
                    values: vec![Value::Int(1), Value::from("a; b")],
                    count: 2,
                },
                CommitItem {
                    relation: "R".to_string(),
                    values: vec![Value::Int(2), Value::from("plain")],
                    count: 1,
                },
                CommitItem {
                    relation: "S".to_string(),
                    values: vec![Value::from("it's")],
                    count: -1,
                },
            ])
        );
        assert_eq!(Request::parse("COMMIT").unwrap_err().0, ErrorKind::Protocol);
        assert_eq!(
            Request::parse("COMMIT R 1").unwrap_err().0,
            ErrorKind::Parse
        );
        assert_eq!(
            Request::parse("COMMIT R(1)=x").unwrap_err().0,
            ErrorKind::Parse
        );
    }

    #[test]
    fn datalog_and_define_split_correctly() {
        assert_eq!(
            Request::parse("DATALOG p(x) :- e(x). ? p").unwrap(),
            Request::Datalog {
                program: "p(x) :- e(x).".to_string(),
                goal: "p".to_string(),
            }
        );
        assert_eq!(
            Request::parse("DEFINE v = project[a] R").unwrap(),
            Request::Define {
                name: "v".to_string(),
                expr: "project[a] R".to_string(),
            }
        );
        assert_eq!(
            Request::parse("DEFINE 1v = R").unwrap_err().0,
            ErrorKind::Protocol
        );
        assert_eq!(
            Request::parse("DATALOG p(x).").unwrap_err().0,
            ErrorKind::Protocol
        );
    }

    #[test]
    fn rendering_is_single_line_and_omits_cache_status() {
        let hit = Response::Rows {
            epoch: 3,
            cached: Some(true),
            schema: vec!["a".to_string(), "b".to_string()],
            rows: vec![
                (vec![Value::Int(1), Value::from("x")], "2".to_string()),
                (vec![Value::Int(2), Value::from("y')")], "1".to_string()),
            ],
        };
        let mut miss = hit.clone();
        if let Response::Rows { cached, .. } = &mut miss {
            *cached = Some(false);
        }
        assert_eq!(hit.render(), miss.render(), "cache status must not leak");
        assert_eq!(
            hit.render(),
            "ok rows epoch=3 [a, b] (1, 'x')@2; (2, 'y'')')@1"
        );
        let empty = Response::Rows {
            epoch: 0,
            cached: None,
            schema: vec!["a".to_string()],
            rows: vec![],
        };
        assert_eq!(empty.render(), "ok rows epoch=0 [a]");
        let err = Response::error(ErrorKind::Parse, "line one\nline two");
        assert!(!err.render().contains('\n'));
        assert!(err.render().starts_with("err parse: "));
    }
}

//! Sessions: the request dispatcher tying snapshots, plans, and the cache
//! together.
//!
//! A [`Service`] owns (shares) one [`SharedDatabase`] and one [`PlanCache`];
//! each client connection gets a [`Session`]. Sessions are where the
//! isolation story becomes user-visible:
//!
//! * Reads (`QUERY`, `DATALOG`, `READ`, `VIEW`) run against the session's
//!   **snapshot** — the live one by default, or a fixed one after `PIN` —
//!   so a query never observes half of a concurrent commit.
//! * Writes (`COMMIT`, `DEFINE`, `DROP`) always go to the head of the
//!   shared database and report the epoch they published, even while the
//!   session is pinned.
//! * Plans are fetched from the epoch-keyed [`PlanCache`], so a repeated
//!   query at an unchanged epoch replans nothing, and any commit
//!   invalidates implicitly.
//!
//! Every reply carries the epoch it was computed at, which is what lets the
//! differential harness replay a concurrent run serially: re-issue each
//! logged request pinned to the epoch its original reply reported, and the
//! rendered bytes must match.

use crate::cache::PlanCache;
use crate::protocol::{CommitItem, ErrorKind, Request, Response};
use crate::ra_parse::{normalize, parse_ra};
use crate::wire::WireSemiring;
use provsem_core::kernels::Batch;
use provsem_core::prelude::{
    Database, DbSnapshot, DeltaBatch, EvalError, ExecContext, KRelation, Plan, RelationSource,
    Schema, SharedDatabase, Tuple, Value,
};
use provsem_datalog::{
    evaluate_with_context, parse_program, EvalStrategy, FactStore, Program, DEFAULT_FALLBACK_BOUND,
};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A query service over one shared database: hands out [`Session`]s that
/// share its snapshot store and plan cache. Cloning is cheap (two `Arc`
/// bumps) — clones serve the same database.
pub struct Service<K: WireSemiring> {
    shared: Arc<SharedDatabase<K>>,
    cache: Arc<PlanCache>,
    ctx: ExecContext,
}

impl<K: WireSemiring> Clone for Service<K> {
    fn clone(&self) -> Self {
        Service {
            shared: Arc::clone(&self.shared),
            cache: Arc::clone(&self.cache),
            ctx: self.ctx,
        }
    }
}

impl<K: WireSemiring> Service<K> {
    /// Serves `db`, executing with the default (env-configured) thread
    /// budget.
    pub fn new(db: Database<K>) -> Self {
        Service::with_context(db, ExecContext::default())
    }

    /// Serves `db` with an explicit per-query thread budget.
    pub fn with_context(db: Database<K>, ctx: ExecContext) -> Self {
        Service {
            shared: Arc::new(SharedDatabase::new(db)),
            cache: Arc::new(PlanCache::new()),
            ctx,
        }
    }

    /// The underlying snapshot store (for tests and embedding callers that
    /// want to commit or snapshot outside the protocol).
    pub fn shared(&self) -> &Arc<SharedDatabase<K>> {
        &self.shared
    }

    /// The plan cache shared by all sessions.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Opens a session. Sessions are independent: each tracks its own pin
    /// state, while commits and the plan cache are shared.
    pub fn session(&self) -> Session<K> {
        Session {
            service: self.clone(),
            pinned: None,
        }
    }
}

/// One client's protocol state: a handle on the service plus an optional
/// pinned snapshot. Drive it with [`Session::handle_line`].
pub struct Session<K: WireSemiring> {
    service: Service<K>,
    pinned: Option<DbSnapshot<K>>,
}

impl<K: WireSemiring> Session<K> {
    /// The snapshot reads run against: the pinned one, or the live head.
    pub fn snapshot(&self) -> DbSnapshot<K> {
        self.pinned
            .clone()
            .unwrap_or_else(|| self.service.shared.snapshot())
    }

    /// Pins the session to an explicit snapshot. This is the replay hook:
    /// the differential harness re-executes logged requests pinned to the
    /// epoch their original replies reported.
    pub fn pin_to(&mut self, snapshot: DbSnapshot<K>) {
        self.pinned = Some(snapshot);
    }

    /// Parses and executes one request line. Never panics on client input —
    /// every failure is a structured [`Response::Error`].
    pub fn handle_line(&mut self, line: &str) -> Response {
        match Request::parse(line) {
            Ok(request) => self.handle(request),
            Err((kind, message)) => Response::Error { kind, message },
        }
    }

    /// Executes one parsed request.
    pub fn handle(&mut self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Bye => Response::Bye,
            Request::Epoch => Response::Epoch(self.snapshot().epoch()),
            Request::Pin => {
                let snapshot = self.service.shared.snapshot();
                let epoch = snapshot.epoch();
                self.pinned = Some(snapshot);
                Response::Pinned(epoch)
            }
            Request::Unpin => {
                self.pinned = None;
                Response::Unpinned(self.service.shared.epoch())
            }
            Request::Stats => {
                let snapshot = self.snapshot();
                let stats = self.service.cache.stats();
                let batch = snapshot.batch_cache_stats();
                Response::Stats {
                    epoch: snapshot.epoch(),
                    hits: stats.hits,
                    misses: stats.misses,
                    entries: stats.entries,
                    views: snapshot.view_names().count(),
                    batch_hits: batch.hits,
                    batch_misses: batch.misses,
                    batch_patches: batch.patches,
                }
            }
            Request::Query(text) => self.query(&text),
            Request::Datalog { program, goal } => self.datalog(&program, &goal),
            Request::Commit(items) => self.commit(&items),
            Request::Define { name, expr } => self.define(&name, &expr),
            Request::Drop(name) => self.drop_view(&name),
            Request::View(name) => self.view(&name),
            Request::Read(name) => self.read(&name),
        }
    }

    fn query(&self, text: &str) -> Response {
        let expr = match parse_ra(text) {
            Ok(expr) => expr,
            Err(e) => return Response::error(ErrorKind::Parse, e),
        };
        let snapshot = self.snapshot();
        let planned = self
            .service
            .cache
            .get_or_plan(snapshot.epoch(), &normalize(&expr), || {
                Plan::new(&expr, &snapshot.catalog())
            });
        match planned {
            Ok((plan, hit)) => {
                let result = plan.execute_with(&snapshot, &self.service.ctx);
                rows_response(snapshot.epoch(), Some(hit), &result)
            }
            Err(e) => eval_error(e),
        }
    }

    fn read(&self, name: &str) -> Response {
        let snapshot = self.snapshot();
        match snapshot.database().get(name) {
            Some(relation) => rows_response(snapshot.epoch(), None, relation),
            None => Response::error(
                ErrorKind::UnknownRelation,
                format!("no base relation {name} at epoch {}", snapshot.epoch()),
            ),
        }
    }

    fn view(&self, name: &str) -> Response {
        let snapshot = self.snapshot();
        let Some(result) = snapshot.view_shared(name) else {
            return Response::error(
                ErrorKind::UnknownView,
                format!("no standing view {name} at epoch {}", snapshot.epoch()),
            );
        };
        // Standing views live in the snapshot's batch cache: registration
        // seeds the entry and every commit patches it forward with the
        // view's own maintenance delta, so this read is a cache hit (never
        // a re-conversion) no matter how many commits have advanced the
        // view since registration.
        match snapshot.batch_cache() {
            Some((cache, epoch)) => batch_rows_response(
                snapshot.epoch(),
                result.schema(),
                &cache.get_or_convert(epoch, &result),
            ),
            None => rows_response(snapshot.epoch(), None, &result),
        }
    }

    fn define(&self, name: &str, text: &str) -> Response {
        let expr = match parse_ra(text) {
            Ok(expr) => expr,
            Err(e) => return Response::error(ErrorKind::Parse, e),
        };
        match self.service.shared.register_view(name, &expr) {
            Ok(epoch) => Response::Defined {
                name: name.to_string(),
                epoch,
            },
            Err(e) => eval_error(e),
        }
    }

    fn drop_view(&self, name: &str) -> Response {
        if self.service.shared.snapshot().view(name).is_none() {
            return Response::error(ErrorKind::UnknownView, format!("no standing view {name}"));
        }
        Response::Dropped {
            name: name.to_string(),
            epoch: self.service.shared.drop_view(name),
        }
    }

    fn commit(&self, items: &[CommitItem]) -> Response {
        // Deltas resolve against the live head (what the commit will apply
        // to), not the session pin: a pinned session's reads stay in the
        // past, but its writes land in the present like everyone else's.
        let head = self.service.shared.snapshot();
        let mut batch = DeltaBatch::new();
        for item in items {
            let relation = match head.database().get(&item.relation) {
                Some(relation) => relation,
                None => {
                    return Response::error(
                        ErrorKind::UnknownRelation,
                        format!("no base relation {} to commit into", item.relation),
                    )
                }
            };
            let schema = relation.schema();
            if schema.arity() != item.values.len() {
                return Response::error(
                    ErrorKind::Arity,
                    format!(
                        "{} has arity {}, got {} values",
                        item.relation,
                        schema.arity(),
                        item.values.len()
                    ),
                );
            }
            let annotation = match K::from_wire_count(item.count) {
                Ok(annotation) => annotation,
                Err(message) => return Response::error(ErrorKind::Annotation, message),
            };
            let tuple = Tuple::new(
                schema
                    .attributes()
                    .iter()
                    .cloned()
                    .zip(item.values.iter().cloned()),
            );
            batch.insert(&item.relation, tuple, annotation);
        }
        Response::Committed {
            epoch: self.service.shared.commit_with(&batch, &self.service.ctx),
            changes: items.len(),
        }
    }

    fn datalog(&self, text: &str, goal: &str) -> Response {
        let program = match parse_program(text) {
            Ok(program) => program,
            Err(e) => return Response::error(ErrorKind::Parse, e),
        };
        if !program.is_safe() {
            return Response::error(
                ErrorKind::UnsafeProgram,
                "program is not range-restricted (every head variable must occur in the body)",
            );
        }
        let Some(arity) = goal_arity(&program, goal) else {
            return Response::error(
                ErrorKind::UnknownRelation,
                format!("goal {goal} is not an IDB predicate of the program (use READ for base relations)"),
            );
        };
        let snapshot = self.snapshot();
        // Import only the relations the program actually reads — a datalog
        // goal over a small edge relation must not pay to copy every other
        // (possibly large) relation in the database. Each relation is read
        // through the snapshot's columnar batch cache: the first datalog
        // (or batch-engine RA) scan of a relation version columnarizes it
        // for every later scan, and commits patch the entry forward instead
        // of invalidating it — so repeated DATALOG requests share the
        // conversion across sessions and epochs (visible in STATS).
        let mut edb = FactStore::<K>::new();
        for name in program.edb_predicates() {
            let Some(shared) = snapshot.database().get_shared(&name) else {
                continue;
            };
            match snapshot.batch_cache() {
                Some((cache, epoch)) => {
                    edb.import_batches(&name, &cache.get_or_convert(epoch, &shared));
                }
                None => {
                    let order: Vec<&str> = shared
                        .schema()
                        .attributes()
                        .iter()
                        .map(|a| a.name())
                        .collect();
                    edb.import_relation(&name, &shared, &order);
                }
            }
        }
        let result = evaluate_with_context(
            &program,
            &edb,
            EvalStrategy::SemiNaive,
            DEFAULT_FALLBACK_BOUND,
            &self.service.ctx,
        );
        if !result.converged {
            return Response::error(
                ErrorKind::NotConverged,
                format!(
                    "fixpoint still changing after {DEFAULT_FALLBACK_BOUND} rounds \
                     (annotations may diverge in this semiring)"
                ),
            );
        }
        let rows = result
            .idb
            .facts_of(goal)
            .map(|(fact, k)| (fact.values, k.render_annotation()))
            .collect();
        Response::Rows {
            epoch: snapshot.epoch(),
            cached: None,
            schema: (0..arity).map(|i| format!("c{i}")).collect(),
            rows,
        }
    }
}

/// The arity of `goal` if it is the head predicate of some rule.
fn goal_arity(program: &Program, goal: &str) -> Option<usize> {
    program
        .rules
        .iter()
        .find(|rule| rule.head.predicate == goal)
        .map(|rule| rule.head.arity())
}

fn rows_response<K: WireSemiring>(
    epoch: u64,
    cached: Option<bool>,
    relation: &KRelation<K>,
) -> Response {
    // Schema attributes are sorted, and tuples store fields in the same
    // sorted order, so positional values line up with the schema labels.
    Response::Rows {
        epoch,
        cached,
        schema: relation
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name().to_string())
            .collect(),
        rows: relation
            .iter()
            .map(|(tuple, k)| (tuple.values().cloned().collect(), k.render_annotation()))
            .collect(),
    }
}

/// Renders rows from a view's cached columnar batches. A patched cache
/// entry is the base conversion plus appended commit deltas, so one tuple
/// may occur in several batches (deletions as inverse annotations): fold
/// with semiring `+`, drop zero sums, and render in sorted tuple order —
/// byte-identical to rendering the view relation itself.
fn batch_rows_response<K: WireSemiring>(
    epoch: u64,
    schema: &Schema,
    batches: &[Batch<K>],
) -> Response {
    let mut merged: BTreeMap<Vec<Value>, K> = BTreeMap::new();
    for source in batches {
        let materialized;
        let batch = if source.live_rows() == source.phys_rows() {
            source
        } else {
            materialized = source.clone().materialize();
            &materialized
        };
        for row in 0..batch.phys_rows() as u32 {
            let values: Vec<Value> = batch.columns().iter().map(|c| c.value_at(row)).collect();
            let k = batch.anns()[row as usize].clone();
            match merged.entry(values) {
                Entry::Occupied(mut e) => e.get_mut().plus_assign(&k),
                Entry::Vacant(e) => {
                    e.insert(k);
                }
            }
        }
    }
    Response::Rows {
        epoch,
        cached: None,
        schema: schema
            .attributes()
            .iter()
            .map(|a| a.name().to_string())
            .collect(),
        rows: merged
            .into_iter()
            .filter(|(_, k)| !k.is_zero())
            .map(|(values, k)| (values, k.render_annotation()))
            .collect(),
    }
}

fn eval_error(e: EvalError) -> Response {
    let kind = match &e {
        EvalError::UnknownRelation(_) => ErrorKind::UnknownRelation,
        EvalError::SchemaMismatch { .. } => ErrorKind::Schema,
        EvalError::InvalidProjection { .. } => ErrorKind::Projection,
        EvalError::InvalidRenaming(_) => ErrorKind::Renaming,
    };
    Response::error(kind, e)
}

//! Protocol round-trip tests: parse → plan → execute → render, the full
//! error surface as structured replies, and plan-cache hit/invalidation
//! (ISSUE satellite: the query service's conformance suite).

use provsem_core::prelude::{Database, KRelation, Schema, Tuple, Value};
use provsem_semiring::ring::Integers;
use provsem_semiring::Natural;
use provsem_server::prelude::*;

/// R(a, b) = {(1,'x')@2, (2,'y')@1}, S(b, c) = {('x',10)@1}.
fn z_db() -> Database<Integers> {
    let r = KRelation::from_tuples(
        Schema::new(["a", "b"]),
        [
            (
                Tuple::new([("a", Value::Int(1)), ("b", Value::from("x"))]),
                Integers::new(2),
            ),
            (
                Tuple::new([("a", Value::Int(2)), ("b", Value::from("y"))]),
                Integers::new(1),
            ),
        ],
    );
    let s = KRelation::from_tuples(
        Schema::new(["b", "c"]),
        [(
            Tuple::new([("b", Value::from("x")), ("c", Value::Int(10))]),
            Integers::new(1),
        )],
    );
    Database::new().with("R", r).with("S", s)
}

#[test]
fn query_round_trip_over_tcp() {
    let handle = serve(Service::new(z_db()), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.request("PING").unwrap(), "ok pong");
    assert_eq!(client.request("EPOCH").unwrap(), "ok epoch 0");
    assert_eq!(
        client.request("QUERY R").unwrap(),
        "ok rows epoch=0 [a, b] (1, 'x')@2; (2, 'y')@1"
    );
    assert_eq!(
        client.request("QUERY project[a] R").unwrap(),
        "ok rows epoch=0 [a] (1)@2; (2)@1"
    );
    assert_eq!(
        client.request("QUERY R join S").unwrap(),
        "ok rows epoch=0 [a, b, c] (1, 'x', 10)@2"
    );
    // Reads and queries agree byte-for-byte on base relations.
    assert_eq!(
        client.request("READ R").unwrap(),
        client.request("QUERY R").unwrap()
    );
    // Commit over the wire, then observe the new epoch and data.
    assert_eq!(
        client.request("COMMIT R(3, 'z')=5").unwrap(),
        "ok committed epoch=1 changes=1"
    );
    assert_eq!(
        client.request("QUERY select[a != 2] R").unwrap(),
        "ok rows epoch=1 [a, b] (1, 'x')@2; (3, 'z')@5"
    );
    // Ring semantics: a negative count retracts.
    assert_eq!(
        client.request("COMMIT R(3, 'z')=-5").unwrap(),
        "ok committed epoch=2 changes=1"
    );
    assert_eq!(
        client.request("QUERY R").unwrap(),
        "ok rows epoch=2 [a, b] (1, 'x')@2; (2, 'y')@1"
    );
    assert_eq!(client.request("BYE").unwrap(), "ok bye");
    handle.shutdown();
}

#[test]
fn every_failure_is_a_structured_reply() {
    let service = Service::new(z_db());
    let mut session = service.session();
    let cases: &[(&str, &str)] = &[
        ("", "err protocol:"),
        ("FROB R", "err protocol:"),
        ("PING now", "err protocol:"),
        ("QUERY", "err protocol:"),
        ("QUERY select[#] R", "err parse:"),
        ("QUERY NoSuch", "err unknown_relation:"),
        ("QUERY R union S", "err schema:"),
        ("QUERY project[zzz] R", "err projection:"),
        ("QUERY rename[a -> b] R", "err renaming:"),
        ("COMMIT", "err protocol:"),
        ("COMMIT R 1", "err parse:"),
        ("COMMIT R(1)=2", "err arity:"),
        ("COMMIT T(1, 2)=1", "err unknown_relation:"),
        ("DATALOG p(x) :- R(x, y) ? p", "err parse:"),
        ("DATALOG p(x, z) :- R(x, y). ? p", "err unsafe:"),
        ("DATALOG p(x) :- R(x, y). ? q", "err unknown_relation:"),
        ("DEFINE v project[a] R", "err protocol:"),
        ("DEFINE v = NoSuch", "err unknown_relation:"),
        ("VIEW nope", "err unknown_view:"),
        ("DROP nope", "err unknown_view:"),
        ("READ nope", "err unknown_relation:"),
    ];
    for (request, prefix) in cases {
        let rendered = session.handle_line(request).render();
        assert!(
            rendered.starts_with(prefix),
            "{request:?} => {rendered:?}, expected prefix {prefix:?}"
        );
        // Errors never poison the session.
        assert_eq!(session.handle_line("PING").render(), "ok pong");
    }
    // Nothing above committed anything.
    assert_eq!(service.shared().epoch(), 0);
}

#[test]
fn natural_sessions_reject_deletions_with_a_structured_error() {
    let db: Database<Natural> = z_db().map_annotations(|k| Natural::from(k.0.unsigned_abs()));
    let service = Service::new(db);
    let mut session = service.session();
    let rendered = session.handle_line("COMMIT R(1, 'x')=-1").render();
    assert!(
        rendered.starts_with("err annotation:") && rendered.contains("additive inverses"),
        "{rendered:?}"
    );
    // Positive counts are fine in ℕ.
    assert_eq!(
        session.handle_line("COMMIT R(1, 'x')=3").render(),
        "ok committed epoch=1 changes=1"
    );
}

#[test]
fn plan_cache_hits_until_a_commit_invalidates() {
    let service = Service::new(z_db());
    let mut session = service.session();
    let cached_flag = |response: &Response| match response {
        Response::Rows { cached, .. } => cached.expect("queries always report cache status"),
        other => panic!("expected rows, got {other:?}"),
    };

    let first = session.handle_line("QUERY project[a] R");
    assert!(!cached_flag(&first), "cold cache must miss");
    // Different spelling, same normalized query: hits.
    let second = session.handle_line("QUERY project[ a ] ( R )");
    assert!(cached_flag(&second), "normalized respelling must hit");
    assert_eq!(first.render(), second.render());
    assert_eq!(
        session.handle_line("STATS").render(),
        "ok stats epoch=0 hits=1 misses=1 entries=1 views=0 \
         batch_hits=0 batch_misses=0 batch_patches=0"
    );

    // A commit bumps the epoch; the same query must replan (the catalog —
    // cardinalities included — changed), and stale entries are evicted.
    session.handle_line("COMMIT R(9, 'q')=1");
    let after = session.handle_line("QUERY project[a] R");
    assert!(
        !cached_flag(&after),
        "commit must invalidate the plan cache"
    );
    assert_eq!(
        session.handle_line("STATS").render(),
        "ok stats epoch=1 hits=1 misses=2 entries=1 views=0 \
         batch_hits=0 batch_misses=0 batch_patches=0"
    );
}

/// The storage-layer batch cache behind `STATS`: once a relation outgrows
/// the auto-batch threshold, a query columnarizes its scan once (a batch
/// miss), repeated queries against the same relation version hit, and a
/// commit *patches* the cached conversion forward instead of invalidating
/// it — so the post-commit query still hits.
#[test]
fn stats_report_batch_cache_hits_and_commit_patches() {
    let service = Service::new(z_db());
    let mut session = service.session();
    // Grow R past the auto-batch threshold so the planner picks batch.
    for i in 10..74 {
        session.handle_line(&format!("COMMIT R({i}, 'v{i}')=1"));
    }
    session.handle_line("QUERY project[a] R"); // converts R: batch miss
    session.handle_line("QUERY project[a] R"); // same relation version: hit
    let stats = session.handle_line("STATS").render();
    assert!(
        stats.ends_with("batch_hits=1 batch_misses=1 batch_patches=0"),
        "{stats:?}"
    );
    session.handle_line("COMMIT R(99, 'z')=1");
    session.handle_line("QUERY project[a] R");
    let stats = session.handle_line("STATS").render();
    assert!(
        stats.ends_with("batch_hits=2 batch_misses=1 batch_patches=1"),
        "{stats:?}"
    );
}

#[test]
fn pinned_sessions_get_repeatable_reads() {
    let service = Service::new(z_db());
    let mut reader = service.session();
    let mut writer = service.session();

    assert_eq!(reader.handle_line("PIN").render(), "ok pinned 0");
    let before = reader.handle_line("READ R").render();
    writer.handle_line("COMMIT R(7, 'w')=1");
    // The pinned session still sees epoch 0...
    assert_eq!(reader.handle_line("EPOCH").render(), "ok epoch 0");
    assert_eq!(reader.handle_line("READ R").render(), before);
    // ...but its writes land at the head.
    assert_eq!(
        reader.handle_line("COMMIT R(8, 'v')=1").render(),
        "ok committed epoch=2 changes=1"
    );
    assert_eq!(reader.handle_line("READ R").render(), before);
    // Unpinning catches up.
    assert_eq!(reader.handle_line("UNPIN").render(), "ok unpinned 2");
    assert!(reader.handle_line("READ R").render().contains("(8, 'v')@1"));
}

#[test]
fn standing_views_over_the_wire() {
    let handle = serve(Service::new(z_db()), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(
        client
            .request("DEFINE v = project[a] select[b != 'y'] R")
            .unwrap(),
        "ok defined v epoch=1"
    );
    assert_eq!(
        client.request("VIEW v").unwrap(),
        "ok rows epoch=1 [a] (1)@2"
    );
    // The view advances with commits...
    client.request("COMMIT R(4, 'u')=3").unwrap();
    assert_eq!(
        client.request("VIEW v").unwrap(),
        "ok rows epoch=2 [a] (1)@2; (4)@3"
    );
    // ...and always equals recomputing its definition.
    let recomputed = client
        .request("QUERY project[a] select[b != 'y'] R")
        .unwrap();
    assert_eq!(client.request("VIEW v").unwrap(), recomputed);
    assert_eq!(client.request("DROP v").unwrap(), "ok dropped v epoch=3");
    assert_eq!(
        client.request("VIEW v").unwrap(),
        "err unknown_view: no standing view v at epoch 3"
    );
    handle.shutdown();
}

#[test]
fn datalog_round_trip_computes_the_fixpoint() {
    // E(s, t): a path graph a -> b -> c, with multiplicities.
    let e = KRelation::from_tuples(
        Schema::new(["s", "t"]),
        [
            (Tuple::new([("s", "a"), ("t", "b")]), Integers::new(2)),
            (Tuple::new([("s", "b"), ("t", "c")]), Integers::new(3)),
        ],
    );
    let service = Service::new(Database::new().with("E", e));
    let mut session = service.session();
    let rendered = session
        .handle_line("DATALOG path(x, y) :- E(x, y). path(x, z) :- path(x, y), E(y, z). ? path")
        .render();
    // Bag semantics: a->c has 2 * 3 = 6 derivations.
    assert_eq!(
        rendered,
        "ok rows epoch=0 [c0, c1] ('a', 'b')@2; ('a', 'c')@6; ('b', 'c')@3"
    );
    // The goal sees the session snapshot: commits change the answer.
    session.handle_line("COMMIT E('c', 'd')=1");
    let rendered = session
        .handle_line("DATALOG path(x, y) :- E(x, y). path(x, z) :- path(x, y), E(y, z). ? path")
        .render();
    assert!(rendered.contains("('a', 'd')@6"), "{rendered:?}");
}

/// Standing-view results live in the batch cache: DEFINE seeds the entry,
/// VIEW reads hit it, and a commit patches it forward with the view's own
/// maintenance output delta — a post-commit read is served by the patched
/// entry, never by re-converting the view.
#[test]
fn view_reads_hit_the_batch_cache_and_commits_patch_it() {
    let service = Service::new(z_db());
    let mut session = service.session();
    session.handle_line("DEFINE v = project[a] select[b != 'y'] R");
    let stats = session.handle_line("STATS").render();
    // Two conversions at DEFINE: the materializing scan of R, and the seeded
    // entry for the view's own result.
    assert!(
        stats.ends_with("batch_hits=0 batch_misses=2 batch_patches=0"),
        "registration seeds the view's entry: {stats:?}"
    );
    assert_eq!(
        session.handle_line("VIEW v").render(),
        "ok rows epoch=1 [a] (1)@2"
    );
    session.handle_line("COMMIT R(4, 'u')=3");
    assert_eq!(
        session.handle_line("VIEW v").render(),
        "ok rows epoch=2 [a] (1)@2; (4)@3"
    );
    let stats = session.handle_line("STATS").render();
    // Both view reads hit; the commit patched both entries (R and the
    // view's result) forward — nothing was re-converted.
    assert!(
        stats.ends_with("batch_hits=2 batch_misses=2 batch_patches=2"),
        "both reads hit; the commit patched, not re-converted: {stats:?}"
    );
}

/// DATALOG reads its EDB through the snapshot batch cache: the first goal
/// against a relation version columnarizes it (a miss), repeats hit, and a
/// commit patches the conversion forward so post-commit goals still hit.
#[test]
fn datalog_reads_the_edb_through_the_batch_cache() {
    let service = Service::new(z_db());
    let mut session = service.session();
    assert_eq!(
        session.handle_line("DATALOG q(x) :- R(x, y). ? q").render(),
        "ok rows epoch=0 [c0] (1)@2; (2)@1"
    );
    session.handle_line("DATALOG q(x) :- R(x, y). ? q");
    let stats = session.handle_line("STATS").render();
    assert!(
        stats.ends_with("batch_hits=1 batch_misses=1 batch_patches=0"),
        "{stats:?}"
    );
    session.handle_line("COMMIT R(7, 'w')=1");
    assert_eq!(
        session.handle_line("DATALOG q(x) :- R(x, y). ? q").render(),
        "ok rows epoch=1 [c0] (1)@2; (2)@1; (7)@1"
    );
    let stats = session.handle_line("STATS").render();
    assert!(
        stats.ends_with("batch_hits=2 batch_misses=1 batch_patches=1"),
        "{stats:?}"
    );
}

//! Cross-crate integration tests reproducing every worked example of the
//! paper end to end (the per-figure details live in EXPERIMENTS.md).

use provenance_semirings::prelude::*;
use std::collections::BTreeSet;

/// E1 — Figure 1: the maybe-table's 8 worlds, queried world-by-world, give
/// the 8 worlds of Figure 1(c), and that world set is not representable by a
/// maybe-table.
#[test]
fn e1_figure1_possible_worlds() {
    let table = MaybeTable::figure1();
    let worlds = PossibleWorlds::new(table.possible_worlds());
    let answer = worlds
        .answer_query("R", &paper::section2_schema(), &paper::section2_query())
        .unwrap();
    assert_eq!(answer.len(), 8);
    assert!(!answer.representable_by_maybe_table());
}

/// E2 — Figure 2: the Imielinski–Lipski computation (RA⁺ over PosBool) gives
/// the simplified c-table and represents exactly the Figure 1(c) worlds.
#[test]
fn e2_figure2_ctable_answer() {
    let answer = CTable::figure1b()
        .answer_query("R", &paper::section2_query())
        .unwrap();
    for (tuple, condition) in figure2b_expected() {
        assert_eq!(answer.condition(&tuple), condition, "{tuple:?}");
    }
    let world_answer = PossibleWorlds::new(MaybeTable::figure1().possible_worlds())
        .answer_query("R", &paper::section2_schema(), &paper::section2_query())
        .unwrap();
    assert_eq!(answer.possible_worlds(), world_answer);
}

/// E3 — Figure 3: bag semantics multiplicities 8, 10, 10, 55, 7.
#[test]
fn e3_figure3_bag_semantics() {
    let out = paper::section2_query().eval(&paper::figure3_bag()).unwrap();
    for (a, c, n) in paper::figure3_expected() {
        assert_eq!(
            out.annotation(&Tuple::new([("a", a), ("c", c)])),
            Natural::from(n)
        );
    }
}

/// E4 — Figure 4: probabilistic query answering via event tables.
#[test]
fn e4_figure4_probabilities() {
    let db = TupleIndependentDb::figure4();
    let expected = [
        ("a", "c", 0.6),
        ("a", "e", 0.3),
        ("d", "c", 0.3),
        ("d", "e", 0.5),
        ("f", "e", 0.1),
    ];
    for (a, c, p) in expected {
        let got = db
            .tuple_probability(&paper::section2_query(), &Tuple::new([("a", a), ("c", c)]))
            .unwrap();
        assert!((got - p).abs() < 1e-9, "({a},{c}): {got} vs {p}");
    }
}

/// E5 — Figure 5: why-provenance and provenance polynomials, plus the
/// factorization theorem recovering Figures 2, 3 and 4 from one provenance
/// computation.
#[test]
fn e5_figure5_provenance_and_factorization() {
    let tagged = paper::figure5_tagged();
    let out = paper::section2_query().eval(&tagged).unwrap();
    let at = |a: &str, c: &str| out.annotation(&Tuple::new([("a", a), ("c", c)]));
    assert_eq!(at("a", "c"), poly(&[(2, &["p", "p"])]));
    assert_eq!(at("d", "e"), poly(&[(2, &["r", "r"]), (1, &["r", "s"])]));
    assert_eq!(at("f", "e"), poly(&[(2, &["s", "s"]), (1, &["r", "s"])]));
    // Why-provenance cannot tell (d,e) and (f,e) apart; the polynomials can.
    assert_eq!(at("d", "e").why_provenance(), at("f", "e").why_provenance());
    assert_ne!(at("d", "e"), at("f", "e"));

    // Factorization into bags.
    let v_bag = Valuation::from_pairs([
        ("p", Natural::from(2u64)),
        ("r", Natural::from(5u64)),
        ("s", Natural::from(1u64)),
    ]);
    assert_eq!(
        specialize(&out, &v_bag),
        paper::section2_query().eval(&paper::figure3_bag()).unwrap()
    );
    // Factorization into the c-table of Figure 2(b).
    let v_ctable = Valuation::from_pairs([
        ("p", PosBool::var("b1")),
        ("r", PosBool::var("b2")),
        ("s", PosBool::var("b3")),
    ]);
    let ctable = specialize(&out, &v_ctable);
    for (tuple, condition) in figure2b_expected() {
        assert_eq!(ctable.annotation(&tuple), condition);
    }
}

/// E6 — Figure 6: the conjunctive query under bag semantics, evaluated both
/// as datalog and as RA⁺-style direct evaluation (Proposition 5.3).
#[test]
fn e6_figure6_datalog_bag() {
    let program = Program::figure6_query();
    let edb = edge_facts(
        "R",
        &[
            ("a", "a", Natural::from(2u64)),
            ("a", "b", Natural::from(3u64)),
            ("b", "b", Natural::from(4u64)),
        ],
    );
    let out = kleene_iterate(&program, &edb, 4);
    assert!(out.converged);
    for (x, y, n) in paper::figure6_expected() {
        assert_eq!(
            out.idb.annotation(&Fact::new("Q", [x, y])),
            Natural::from(n)
        );
    }
}

/// E7 — Figure 7: transitive closure over ℕ∞, the algebraic system, and the
/// power-series provenance.
#[test]
fn e7_figure7_datalog_provenance() {
    let program = Program::transitive_closure("R", "Q");
    let mut edb: FactStore<NatInf> = FactStore::new();
    edb.import_relation("R", paper::figure7_bag().get("R").unwrap(), &["src", "dst"]);

    // ℕ∞ answers (including the (c,d) tuple the paper's figure omits).
    let out = evaluate_natinf(&program, &edb);
    for (src, dst, expected) in paper::figure7_expected() {
        assert_eq!(
            out.annotation(&Fact::new("Q", [src, dst])),
            expected,
            "({src},{dst})"
        );
    }

    // Datalog provenance via All-Trees + Theorem 6.4 factorization.
    let prov = datalog_provenance(&program, &edb);
    let specialized = prov.specialize(|| NatInf::Inf);
    for (fact, ann) in out.facts() {
        assert_eq!(specialized.annotation(&fact), *ann);
    }

    // Series classification (Theorem 6.5): no unit-rule cycles, so all
    // coefficients are finite.
    let classes = classify_series(&program, &edb);
    assert!(classes.values().all(|c| c.has_finite_coefficients()));
}

/// E8/E9 — Figures 8 and 9: All-Trees classification and monomial
/// coefficients agree with the truncated-series solution of the algebraic
/// system.
#[test]
fn e8_e9_all_trees_and_coefficients() {
    let program = Program::transitive_closure("R", "Q");
    let mut edb: FactStore<NatInf> = FactStore::new();
    edb.import_relation("R", paper::figure7_bag().get("R").unwrap(), &["src", "dst"]);

    let result = all_trees(&program, &edb);
    assert!(result
        .provenance
        .get(&Fact::new("Q", ["a", "b"]))
        .unwrap()
        .as_polynomial()
        .is_some());
    assert!(result
        .provenance
        .get(&Fact::new("Q", ["d", "d"]))
        .unwrap()
        .is_infinite());

    // Catalan coefficients of v = Q(d,d) via the Figure 9 algorithm.
    let vars = default_edb_variables(&edb);
    let s_var = vars.get(&Fact::new("R", ["d", "d"])).unwrap().clone();
    for (k, catalan) in [(1u32, 1u64), (2, 1), (3, 2), (4, 5)] {
        let mu = Monomial::from_powers([(s_var.clone(), k)]);
        assert_eq!(
            monomial_coefficient(&program, &edb, &vars, &Fact::new("Q", ["d", "d"]), &mu),
            NatInf::Fin(catalan)
        );
    }
}

/// E10 — Section 8: datalog on c-tables and on probabilistic databases
/// terminates and is consistent between the two equivalent algorithms
/// (fixpoint and minimal-trees).
#[test]
fn e10_lattice_datalog() {
    let program = Program::transitive_closure("R", "Q");
    let edb = edge_facts(
        "R",
        &[
            ("a", "b", PosBool::var("e1")),
            ("b", "a", PosBool::var("e2")),
            ("b", "c", PosBool::var("e3")),
        ],
    );
    let fixpoint = evaluate_lattice(&program, &edb, 64).unwrap();
    let trees = evaluate_lattice_via_trees(&program, &edb);
    assert_eq!(fixpoint.len(), trees.len());
    for (fact, ann) in fixpoint.facts() {
        assert_eq!(trees.annotation(&fact), *ann);
    }

    let mut prob_db = TupleIndependentDb::new();
    prob_db.insert("R", Tuple::new([("src", "a"), ("dst", "b")]), 0.5);
    prob_db.insert("R", Tuple::new([("src", "b"), ("dst", "a")]), 0.5);
    let answer = evaluate_probabilistic_datalog(&program, &prob_db, &|_| vec!["src", "dst"]);
    assert!((answer.probability(&Fact::new("Q", ["a", "a"])) - 0.25).abs() < 1e-9);
}

/// E11 — Section 9: containment of (unions of) conjunctive queries under
/// lattice semantics coincides with set-semantics containment, while bag
/// semantics separates set-equivalent queries.
#[test]
fn e11_containment() {
    let q1 = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y), R(x, z).").unwrap();
    let q2 = UnionOfConjunctiveQueries::parse("Q(x) :- R(x, y).").unwrap();
    assert!(q1.contained_in(&q2) && q2.contained_in(&q1));

    let edb_posbool = edge_facts(
        "R",
        &[
            ("a", "b", PosBool::var("x1")),
            ("a", "c", PosBool::var("x2")),
        ],
    );
    assert!(check_containment_on_instance(&q1, &q2, &edb_posbool));
    assert!(check_containment_on_instance(&q2, &q1, &edb_posbool));

    let edb_bag = edge_facts(
        "R",
        &[
            ("a", "b", Natural::from(1u64)),
            ("a", "c", Natural::from(1u64)),
        ],
    );
    assert!(!check_containment_on_instance(&q1, &q2, &edb_bag));
}

/// Proposition 5.4 across crates: the support of the ℕ∞ datalog answer equals
/// the 𝔹 answer, which equals the set of derivable facts.
#[test]
fn proposition_5_4_support_sanity() {
    let program = Program::transitive_closure("R", "Q");
    let mut edb: FactStore<NatInf> = FactStore::new();
    edb.import_relation("R", paper::figure7_bag().get("R").unwrap(), &["src", "dst"]);
    let ninf = evaluate_natinf(&program, &edb);
    let bool_edb = edb.map_annotations(|k| Bool::from(!k.is_zero()));
    let booleans = evaluate_lattice(&program, &bool_edb, 64).unwrap();
    let s1: BTreeSet<Fact> = ninf.facts().map(|(f, _)| f).collect();
    let s2: BTreeSet<Fact> = booleans.facts().map(|(f, _)| f).collect();
    assert_eq!(s1, s2);
    let derivable: BTreeSet<Fact> = derivable_facts(&program, &edb)
        .into_iter()
        .filter(|f| f.predicate == "Q")
        .collect();
    assert_eq!(s1, derivable);
}

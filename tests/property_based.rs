//! Property-based integration tests: the paper's theorems checked on
//! randomly generated instances and queries.

use proptest::prelude::*;
use provenance_semirings::prelude::*;

/// Strategy: a small random edge relation over `n` nodes with ℕ annotations.
fn arb_edges(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Vec<(u8, u8, u64)>> {
    prop::collection::vec(
        (0..max_nodes as u8, 0..max_nodes as u8, 1u64..4),
        1..max_edges,
    )
}

fn node(i: u8) -> String {
    format!("n{i}")
}

fn edge_db(edges: &[(u8, u8, u64)]) -> Database<Natural> {
    let schema = Schema::new(["src", "dst"]);
    let mut rel: KRelation<Natural> = KRelation::empty(schema);
    for (s, d, w) in edges {
        rel.insert(
            Tuple::new([("src", node(*s).as_str()), ("dst", node(*d).as_str())]),
            Natural::from(*w),
        );
    }
    Database::new().with("R", rel)
}

fn edge_store(edges: &[(u8, u8, u64)]) -> FactStore<NatInf> {
    let mut store = FactStore::new();
    for (s, d, w) in edges {
        store.insert(Fact::new("R", [node(*s), node(*d)]), NatInf::Fin(*w));
    }
    store
}

/// A small pool of RA⁺ queries over the binary relation R(src, dst).
fn queries() -> Vec<RaExpr> {
    let r = || RaExpr::relation("R");
    vec![
        // Self-join on dst=src (composition), projected to endpoints.
        r().rename(Renaming::new([("dst", "mid")]))
            .join(r().rename(Renaming::new([("src", "mid")])))
            .project(["src", "dst"]),
        // Union with the identity-ish selection.
        r().union(r().select(Predicate::eq_attrs("src", "dst"))),
        // Out-degree style projection.
        r().project(["src"]),
        // Filter then project.
        r().select(Predicate::ne_value("src", "n0"))
            .project(["dst"]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4.3 on random instances and queries: direct K evaluation
    /// equals provenance evaluation followed by Eval_v, for K = ℕ and 𝔹.
    #[test]
    fn factorization_theorem_on_random_instances(edges in arb_edges(4, 8), qi in 0usize..4) {
        let db = edge_db(&edges);
        let query = &queries()[qi];
        prop_assert!(factorization_holds(query, &db).unwrap());
        let db_bool: Database<Bool> = db.map_annotations(|n| Bool::from(!n.is_zero()));
        prop_assert!(factorization_holds(query, &db_bool).unwrap());
    }

    /// Proposition 3.5 on random instances: applying the support homomorphism
    /// ℕ → 𝔹 commutes with the queries.
    #[test]
    fn homomorphisms_commute_with_queries(edges in arb_edges(4, 8), qi in 0usize..4) {
        let db = edge_db(&edges);
        let query = &queries()[qi];
        let direct: KRelation<Bool> = query
            .eval(&db)
            .unwrap()
            .map_annotations(|n| Bool::from(!n.is_zero()));
        let mapped = query
            .eval(&db.map_annotations(|n| Bool::from(!n.is_zero())))
            .unwrap();
        prop_assert_eq!(direct, mapped);
    }

    /// Proposition 3.4 instances: union is associative/commutative with ∅ as
    /// identity, join distributes over union — on random K-relations.
    #[test]
    fn ra_identities_on_random_relations(e1 in arb_edges(3, 6), e2 in arb_edges(3, 6), e3 in arb_edges(3, 6)) {
        let r1 = edge_db(&e1).get("R").unwrap().clone();
        let r2 = edge_db(&e2).get("R").unwrap().clone();
        let r3 = edge_db(&e3).get("R").unwrap().clone();
        prop_assert_eq!(r1.union(&r2), r2.union(&r1));
        prop_assert_eq!(r1.union(&r2).union(&r3), r1.union(&r2.union(&r3)));
        let empty: KRelation<Natural> = KRelation::empty(r1.schema().clone());
        prop_assert_eq!(r1.union(&empty), r1.clone());
        prop_assert_eq!(
            r1.join(&r2.union(&r3)),
            r1.join(&r2).union(&r1.join(&r3))
        );
        prop_assert_eq!(r1.select(&Predicate::False), empty);
        prop_assert_eq!(r1.select(&Predicate::True), r1.clone());
    }

    /// Exact ℕ∞ datalog evaluation agrees with bounded Kleene iteration
    /// whenever the latter converges, and with All-Trees + Theorem 6.4 always.
    #[test]
    fn datalog_evaluations_agree(edges in arb_edges(4, 7)) {
        let store = edge_store(&edges);
        let program = Program::transitive_closure("R", "Q");
        let exact = evaluate_natinf(&program, &store);
        let iterated = kleene_iterate(&program, &store, 40);
        if iterated.converged {
            for (fact, ann) in exact.facts() {
                prop_assert_eq!(&iterated.idb.annotation(&fact), ann);
            }
        }
        let prov = datalog_provenance(&program, &store);
        let specialized = prov.specialize(|| NatInf::Inf);
        for (fact, ann) in exact.facts() {
            prop_assert_eq!(&specialized.annotation(&fact), ann);
        }
    }

    /// Section 8: datalog over PosBool terminates on arbitrary (cyclic)
    /// graphs and the two algorithms (fixpoint, minimal trees) agree.
    #[test]
    fn lattice_datalog_agreement(edges in arb_edges(3, 6)) {
        let mut store: FactStore<PosBool> = FactStore::new();
        for (i, (s, d, _)) in edges.iter().enumerate() {
            store.insert(
                Fact::new("R", [node(*s), node(*d)]),
                PosBool::var(format!("e{i}")),
            );
        }
        let program = Program::transitive_closure("R", "Q");
        let fixpoint = evaluate_lattice(&program, &store, 128).unwrap();
        let trees = evaluate_lattice_via_trees(&program, &store);
        prop_assert_eq!(fixpoint.len(), trees.len());
        for (fact, ann) in fixpoint.facts() {
            prop_assert_eq!(&trees.annotation(&fact), ann);
        }
    }

    /// Theorem 9.2 spot-check: whenever the homomorphism procedure says
    /// q1 ⊑ q2, the containment holds on random PosBool-annotated instances.
    #[test]
    fn lattice_containment_transfers(edges in arb_edges(3, 6)) {
        let q1 = UnionOfConjunctiveQueries::parse("Q(x, y) :- R(x, z), R(z, y), R(x, y).").unwrap();
        let q2 = UnionOfConjunctiveQueries::parse("Q(x, y) :- R(x, y).").unwrap();
        prop_assert!(q1.contained_in(&q2));
        let mut store: FactStore<PosBool> = FactStore::new();
        for (i, (s, d, _)) in edges.iter().enumerate() {
            store.insert(
                Fact::new("R", [node(*s), node(*d)]),
                PosBool::var(format!("e{i}")),
            );
        }
        prop_assert!(check_containment_on_instance(&q1, &q2, &store));
    }
}

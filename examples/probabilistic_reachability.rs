//! Probabilistic datalog: network reachability under uncertain links.
//!
//! A sensor network's links are observed with varying confidence. We model
//! the link table as a tuple-independent probabilistic database and ask for
//! the probability that each node can still reach the gateway — recursive
//! datalog over the event semiring `P(Ω)` (Section 8 of the paper), which
//! terminates even though the link graph has cycles.
//!
//! Run with: `cargo run --example probabilistic_reachability`

use provenance_semirings::prelude::*;

fn main() {
    // Link(src, dst) with marginal probabilities.
    let links: Vec<(&str, &str, f64)> = vec![
        ("sensor_a", "sensor_b", 0.9),
        ("sensor_b", "sensor_a", 0.9), // symmetric link, makes the graph cyclic
        ("sensor_b", "relay", 0.7),
        ("sensor_a", "relay", 0.3),
        ("relay", "gateway", 0.95),
        ("sensor_c", "relay", 0.5),
        ("sensor_c", "gateway", 0.2),
    ];
    let mut db = TupleIndependentDb::new();
    for (src, dst, p) in &links {
        db.insert("Link", Tuple::new([("src", *src), ("dst", *dst)]), *p);
    }

    // Reach(x, y) :- Link(x, y).  Reach(x, y) :- Reach(x, z), Reach(z, y).
    let program = Program::transitive_closure("Link", "Reach");
    let answer = evaluate_probabilistic_datalog(&program, &db, &|_| vec!["src", "dst"]);

    println!("Probability of reaching the gateway:");
    for node in ["sensor_a", "sensor_b", "sensor_c", "relay"] {
        let p = answer.probability(&Fact::new("Reach", [node, "gateway"]));
        println!("  {node:<10} ↦ {p:.4}");
    }

    // The same computation exposes the *event* of each answer, not just its
    // probability — so conditional queries ("given that the relay is down")
    // can be answered from the same annotations.
    let reach = Fact::new("Reach", ["sensor_a", "gateway"]);
    let event = answer
        .event(&reach)
        .expect("sensor_a can possibly reach the gateway");
    println!("\nEvent annotation of Reach(sensor_a, gateway): {event:?}");

    // Cross-check one marginal by brute force over the possible worlds.
    let probs = db.world_probabilities();
    let brute: f64 = (0..db.num_worlds())
        .filter(|w| event.contains(*w))
        .map(|w| probs[w as usize])
        .sum();
    println!(
        "Brute-force check over {} worlds: {:.6} (matches: {})",
        db.num_worlds(),
        brute,
        (brute - answer.probability(&reach)).abs() < 1e-12
    );

    // Bonus: the most reliable single route, via the Viterbi semiring — the
    // same datalog program, a different K (Proposition 5.7 in action).
    let mut store: FactStore<Viterbi> = FactStore::new();
    for (src, dst, p) in &links {
        store.insert(Fact::new("Link", [*src, *dst]), Viterbi::new(*p));
    }
    let best = evaluate_fixpoint(&program, &store, 64).expect("Viterbi evaluation converges");
    println!("\nBest single-route reliability (Viterbi semiring):");
    for node in ["sensor_a", "sensor_b", "sensor_c", "relay"] {
        let v = best.annotation(&Fact::new("Reach", [node, "gateway"]));
        println!("  {node:<10} ↦ {}", v.value());
    }
}

//! Access control as an annotation semiring.
//!
//! Each base tuple carries the clearance required to read it; query answers
//! are automatically annotated with the clearance required to see them
//! (joins take the stricter level, unions the more permissive one). This is
//! an *extension* example beyond the paper: the clearance lattice is a finite
//! distributive lattice, so everything from Sections 3, 8 and 9 applies to it
//! unchanged — including recursive datalog.
//!
//! Run with: `cargo run --example access_control`

use provenance_semirings::prelude::*;

fn main() {
    // Employee(name, dept) and Salary(name, band), with per-tuple clearances.
    let employees = [
        ("alice", "engineering", Clearance::Public),
        ("bob", "engineering", Clearance::Public),
        ("carol", "security", Clearance::Confidential),
    ];
    let salaries = [
        ("alice", "band_3", Clearance::Confidential),
        ("bob", "band_4", Clearance::Secret),
        ("carol", "band_5", Clearance::TopSecret),
    ];

    let mut emp: KRelation<Clearance> = KRelation::empty(Schema::new(["name", "dept"]));
    for (name, dept, level) in employees {
        emp.insert(Tuple::new([("name", name), ("dept", dept)]), level);
    }
    let mut sal: KRelation<Clearance> = KRelation::empty(Schema::new(["name", "band"]));
    for (name, band, level) in salaries {
        sal.insert(Tuple::new([("name", name), ("band", band)]), level);
    }
    let db = Database::new().with("Employee", emp).with("Salary", sal);

    // Which salary bands exist per department?
    let query = RaExpr::relation("Employee")
        .join(RaExpr::relation("Salary"))
        .project(["dept", "band"]);
    let out = query.eval(&db).expect("query evaluates");

    println!("Department/band report with required clearance:");
    for (tuple, clearance) in out.iter() {
        println!("  {tuple} ↦ {clearance}");
    }

    // What each reader is allowed to see, via visibility filtering of the
    // annotated answer (no per-reader re-evaluation needed).
    for reader in [
        Clearance::Public,
        Clearance::Confidential,
        Clearance::Secret,
    ] {
        let visible: Vec<String> = out
            .iter()
            .filter(|(_, level)| level.visible_to(reader))
            .map(|(t, _)| format!("{t}"))
            .collect();
        println!("\nVisible to a {reader} reader: {visible:?}");
    }

    // The same annotations work for recursive queries: who can be reached in
    // the reporting chain, and what clearance is needed to know it?
    let reports = [
        ("alice", "bob", Clearance::Public),
        ("bob", "carol", Clearance::Confidential),
        ("carol", "dana", Clearance::Secret),
    ];
    let mut store: FactStore<Clearance> = FactStore::new();
    for (mgr, emp, level) in reports {
        store.insert(Fact::new("ReportsTo", [emp, mgr]), level);
    }
    let program = Program::transitive_closure("ReportsTo", "Chain");
    let chain = evaluate_fixpoint(&program, &store, 64).expect("lattice evaluation converges");
    println!("\nManagement-chain visibility (recursive datalog):");
    for (fact, level) in chain.facts() {
        println!("  {fact} ↦ {level}");
    }

    // Provenance view: compute once in ℕ[X], then specialize to clearances —
    // the factorization theorem means the security labelling is consistent
    // with every other annotation semantics by construction.
    let (provenance, valuation) = provenance_of_query(&query, &db).expect("query evaluates");
    let relabelled = provenance.map_annotations(|p| p.eval(&valuation));
    assert_eq!(relabelled, out);
    println!("\nTheorem 4.3 check: provenance-then-specialize equals direct labelling. ✓");
}

//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Section 2 relation, runs the query
//! `q(R) = π_ac(π_ab R ⋈ π_bc R ∪ π_ac R ⋈ π_bc R)` under five different
//! semirings, and shows that a single provenance-polynomial computation
//! specializes to all of them (Theorem 4.3).
//!
//! Run with: `cargo run --example quickstart`

use provenance_semirings::prelude::*;

fn main() {
    let query = paper::section2_query();

    // 1. Bag semantics (Figure 3): multiplicities 2, 5, 1.
    let bags = paper::figure3_bag();
    let out = query.eval(&bags).expect("query evaluates");
    println!("Figure 3 — bag semantics:");
    for (tuple, multiplicity) in out.iter() {
        println!("  {tuple} ↦ {multiplicity}");
    }

    // 2. c-tables / incomplete databases (Figures 1–2).
    let ctable = CTable::figure1b();
    let answer = ctable.answer_query("R", &query).expect("query evaluates");
    println!("\nFigure 2 — Imielinski–Lipski c-table:");
    for (tuple, condition) in answer.relation().iter() {
        println!("  {tuple} ↦ {condition}");
    }
    println!("  ({} possible worlds)", answer.possible_worlds().len());

    // 3. Probabilistic event tables (Figure 4).
    let prob_db = TupleIndependentDb::figure4();
    println!("\nFigure 4 — probabilistic databases:");
    for (tuple, _event, probability) in prob_db.answer_query(&query).expect("query evaluates") {
        println!("  {tuple} ↦ P = {probability:.3}");
    }

    // 4. Provenance polynomials (Figure 5) — computed once...
    let tagged = paper::figure5_tagged();
    let provenance = query.eval(&tagged).expect("query evaluates");
    println!("\nFigure 5 — provenance polynomials (how-provenance):");
    for (tuple, polynomial) in provenance.iter() {
        println!("  {tuple} ↦ {polynomial}");
    }

    // ... and specialized to recover the bag answer (Theorem 4.3).
    let valuation = Valuation::from_pairs([
        ("p", Natural::from(2u64)),
        ("r", Natural::from(5u64)),
        ("s", Natural::from(1u64)),
    ]);
    let recovered = specialize(&provenance, &valuation);
    assert_eq!(recovered, out);
    println!("\nTheorem 4.3: evaluating the polynomials at p=2, r=5, s=1 recovers Figure 3. ✓");

    // 5. Datalog with bag semantics (Figure 7): transitive closure.
    let program = Program::transitive_closure("R", "Q");
    let edb = edge_facts(
        "R",
        &[
            ("a", "b", NatInf::Fin(2)),
            ("a", "c", NatInf::Fin(3)),
            ("c", "b", NatInf::Fin(2)),
            ("b", "d", NatInf::Fin(1)),
            ("d", "d", NatInf::Fin(1)),
        ],
    );
    let tc = evaluate_natinf(&program, &edb);
    println!("\nFigure 7 — datalog transitive closure over ℕ∞:");
    for (fact, annotation) in tc.facts() {
        println!("  {fact} ↦ {annotation}");
    }
}

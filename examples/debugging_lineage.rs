//! Debugging a data pipeline with how-provenance.
//!
//! Scenario from the paper's motivation: a curated sightings database is
//! integrated from three sources of varying trustworthiness. A downstream
//! report contains a suspicious tuple; why-provenance says only *which*
//! sources contributed, but the provenance polynomial says *how* — which lets
//! us answer "what happens if source S is retracted?" without re-running the
//! pipeline, by re-evaluating the polynomial under a different valuation
//! (Proposition 3.5 / Theorem 4.3).
//!
//! Run with: `cargo run --example debugging_lineage`

use provenance_semirings::prelude::*;

fn main() {
    // Sightings(species, region) gathered from three sources; each base
    // tuple is tagged with its own id so that output provenance refers back
    // to concrete source records.
    let schema = Schema::new(["species", "region"]);
    let sightings: Vec<(&str, &str, &str)> = vec![
        // (tuple id, species, region)
        ("museum_1", "lynx", "alps"),
        ("museum_2", "ibex", "alps"),
        ("blog_1", "lynx", "carpathians"),
        ("blog_2", "lynx", "alps"),
        ("survey_1", "ibex", "carpathians"),
    ];
    let mut relation: KRelation<ProvenancePolynomial> = KRelation::empty(schema);
    for (id, species, region) in &sightings {
        relation.insert(
            Tuple::new([("species", *species), ("region", *region)]),
            ProvenancePolynomial::var(*id),
        );
    }
    let db = Database::new().with("Sightings", relation);

    // Report: regions that host two (possibly equal) reported species —
    // a self-join followed by a projection, so multiplicities matter.
    let query = RaExpr::relation("Sightings")
        .project(["region", "species"])
        .join(
            RaExpr::relation("Sightings")
                .rename(Renaming::new([("species", "species2")]))
                .project(["region", "species2"]),
        )
        .project(["region"]);

    let report = query.eval(&db).expect("query evaluates");
    println!("Report with how-provenance:");
    for (tuple, provenance) in report.iter() {
        println!("  {tuple} ↦ {provenance}");
    }

    // Why-provenance loses the distinction between "supported by two
    // independent sources" and "derived twice from the same source".
    println!("\nWhy-provenance (coarser):");
    for (tuple, provenance) in report.iter() {
        println!("  {tuple} ↦ {:?}", provenance.why_provenance());
    }

    // What-if analysis: retract everything coming from the blog. Instead of
    // re-running the query we evaluate the provenance polynomials under a
    // valuation that sends blog tuples to 0 (Bool::FALSE) and the rest to 1.
    let mut retraction: Valuation<Bool> = Valuation::new();
    for (id, _, _) in &sightings {
        let trusted = !id.starts_with("blog");
        retraction.assign(Variable::new(*id), Bool::from(trusted));
    }
    println!("\nAfter retracting the blog source:");
    for (tuple, provenance) in report.iter() {
        let survives = provenance.eval(&retraction);
        println!("  {tuple} survives: {survives}");
    }

    // Trust weighting: evaluate the same polynomials in the fuzzy semiring,
    // where each source has a confidence score and joins take the minimum.
    let mut confidence: Valuation<Fuzzy> = Valuation::new();
    for (id, _, _) in &sightings {
        let score = if id.starts_with("museum") {
            0.95
        } else if id.starts_with("survey") {
            0.8
        } else {
            0.4
        };
        confidence.assign(Variable::new(*id), Fuzzy::new(score));
    }
    println!("\nConfidence of each report row (fuzzy semiring):");
    for (tuple, provenance) in report.iter() {
        let score = provenance.evaluate_with(&confidence, |c| {
            if c.is_zero() {
                Fuzzy::new(0.0)
            } else {
                Fuzzy::new(1.0)
            }
        });
        println!("  {tuple} ↦ {score}");
    }
}

//! # provenance-semirings
//!
//! A full reproduction of **"Provenance Semirings"** (Todd J. Green, Grigoris
//! Karvounarakis, Val Tannen; PODS 2007) as a Rust workspace. This umbrella
//! crate re-exports the individual crates:
//!
//! | crate | contents | paper sections |
//! |-------|----------|----------------|
//! | [`semiring`] | commutative / ω-continuous semirings, lattices, homomorphisms, ℕ\[X\], ℕ∞\[\[X\]\] | 3–6 |
//! | [`core`] | K-relations, positive relational algebra, provenance tracking, factorization theorem | 3–4 |
//! | [`datalog`] | datalog on K-relations, algebraic systems, All-Trees, Monomial-Coefficient, lattice datalog | 5–8 |
//! | [`incomplete`] | maybe-tables, c-tables, possible worlds, Imielinski–Lipski | 2, 8 |
//! | [`prob`] | event tables, tuple-independent DBs, probabilistic datalog | 2, 8 |
//! | [`containment`] | conjunctive-query containment, Theorem 9.2 | 9 |
//! | [`server`] | concurrent query service: snapshot sessions, line protocol, epoch-keyed plan cache | — |
//!
//! ## Quickstart
//!
//! ```
//! use provenance_semirings::prelude::*;
//!
//! // The paper's running example: annotate R's three tuples with their ids
//! // p, r, s, run q(R) = π_ac(π_ab R ⋈ π_bc R ∪ π_ac R ⋈ π_bc R), and read
//! // off the provenance polynomials of Figure 5(c).
//! let db = paper::figure5_tagged();
//! let out = paper::section2_query().eval(&db).unwrap();
//! let de = out.annotation(&Tuple::new([("a", "d"), ("c", "e")]));
//! assert_eq!(de, poly(&[(2, &["r", "r"]), (1, &["r", "s"])])); // 2r² + rs
//!
//! // Factorization theorem: evaluate the polynomial at r=5, s=1 to recover
//! // the bag multiplicity 55 of Figure 3(b).
//! let v = Valuation::from_pairs([("r", Natural::from(5u64)), ("s", Natural::from(1u64))]);
//! assert_eq!(de.eval(&v), Natural::from(55u64));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use provsem_containment as containment;
pub use provsem_core as core;
pub use provsem_datalog as datalog;
pub use provsem_incomplete as incomplete;
pub use provsem_prob as prob;
pub use provsem_semiring as semiring;
pub use provsem_server as server;

/// One-stop prelude combining the preludes of every crate in the workspace.
pub mod prelude {
    pub use provsem_containment::prelude::*;
    pub use provsem_core::prelude::*;
    pub use provsem_datalog::prelude::*;
    pub use provsem_incomplete::prelude::*;
    pub use provsem_prob::prelude::*;
    pub use provsem_semiring::prelude::*;
    pub use provsem_server::prelude::*;
}
